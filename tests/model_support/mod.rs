//! Model-test scenario bodies shared by `tests/model.rs` (they must hold
//! under the checker in normal builds) and `tests/model_mutation.rs`
//! (re-enabling PR 5's freeze races via `--cfg flodb_model_mutation` must
//! make the checker find them).
//!
//! Every body builds its entire world from scratch — the checker runs it
//! once per explored schedule — and uses only `flodb_sync::shim`
//! primitives, so each synchronization step is a scheduling decision
//! point.

// The invariant suite (tests/model.rs) and the mutation suite
// (tests/model_mutation.rs) compile under mutually exclusive cfgs and
// each uses a subset of these bodies.
#![allow(dead_code)]

use std::time::Duration;

use flodb::core::drain::{help_drain_imm_via, DrainStyle};
use flodb::core::view::{ImmMembuffer, MemView, ViewCell};
use flodb::membuffer::{MemBuffer, MemBufferConfig};
use flodb::memtable::SkipList;
use flodb::sync::shim::atomic::{AtomicUsize, Ordering};
use flodb::sync::shim::{thread, Arc, Mutex};
use flodb::sync::{GroupCommitConfig, GroupCommitter, PhasedInflight, SequenceGenerator};

/// One partition, one bucket (4 slots): the smallest Membuffer, so every
/// write and every drain claim contend on the same bucket.
fn tiny_membuffer() -> MemBuffer {
    MemBuffer::new(MemBufferConfig {
        partition_bits: 0,
        buckets_per_partition: 1,
    })
}

/// The PR 5 `open_for_drain` gate scenario (Algorithm 2 lines 12-16 vs.
/// the freeze in Algorithm 3 lines 6-11).
///
/// A straggler writer is mid-`add` against the Membuffer that a master
/// scan is freezing; a helping writer polls for a frozen buffer and helps
/// drain it as soon as [`ImmMembuffer::drain_ready`] allows. The gate
/// opens only after the freeze's grace period, so every straggler entry
/// has landed before any bucket is claimed — with the gate mutated away
/// (`--cfg flodb_model_mutation` pretends it is always open), the helper
/// can claim the straggler's bucket *before* its entry lands, and the
/// acknowledged write is dropped with the frozen buffer.
pub fn freeze_gate_body() {
    let mbf = Arc::new(tiny_membuffer());
    let mtb = Arc::new(SkipList::new());
    let view = Arc::new(ViewCell::new(MemView {
        mbf: Some(Arc::clone(&mbf)),
        imm_mbf: None,
        mtb: Arc::clone(&mtb),
        imm_mtb: None,
    }));
    let seq = Arc::new(SequenceGenerator::new());

    // Straggler: an acknowledged put racing the freeze.
    let writer = {
        let view = Arc::clone(&view);
        thread::spawn(move || {
            view.read(|v| {
                if let Some(m) = &v.mbf {
                    m.add(b"straggler", Some(b"w"));
                }
            });
        })
    };

    // Helping writer (the store's write path): helps with the draining of
    // the immutable Membuffer once the gate allows.
    let helper = {
        let view = Arc::clone(&view);
        let seq = Arc::clone(&seq);
        thread::spawn(move || {
            for _ in 0..2 {
                let imm = view.read(|v| v.imm_mbf.clone());
                if let Some(imm) = imm {
                    if imm.drain_ready() && !imm.tracker.is_complete() {
                        help_drain_imm_via(&imm, &view, &seq, DrainStyle::MultiInsert);
                        return;
                    }
                }
                thread::yield_now();
            }
        })
    };

    // The freezer (master-scan path, `freeze_and_drain_membuffer`):
    // install a fresh Membuffer, freeze the old one — `update` waits the
    // grace period — then open the drain and complete it.
    view.update(|old| MemView {
        mbf: Some(Arc::new(tiny_membuffer())),
        imm_mbf: old
            .mbf
            .as_ref()
            .map(|m| Arc::new(ImmMembuffer::new(Arc::clone(m)))),
        ..old.clone()
    });
    let imm = view.read(|v| v.imm_mbf.clone()).expect("buffer was frozen");
    imm.open_for_drain();
    help_drain_imm_via(&imm, &view, &seq, DrainStyle::MultiInsert);
    while !imm.tracker.is_complete() {
        thread::yield_now();
    }
    writer.join().unwrap();
    helper.join().unwrap();
    assert_eq!(
        imm.buffer.len(),
        0,
        "acknowledged write left in the dropped frozen Membuffer"
    );
}

/// The `open_for_drain` gate, distilled: a straggler `add` racing a
/// helper's bucket claim on a frozen Membuffer.
///
/// Same components and same gate as [`freeze_gate_body`], but the freeze's
/// grace period is expressed directly — the freezer joins the straggler
/// before opening the drain — instead of via an RCU `update`. That keeps
/// the schedule short enough for the bounded search to cover: in
/// [`freeze_gate_body`] the failing window hides behind ~30 consecutive
/// scheduler choices (publish + synchronize + the helper's full view
/// read), past what a preemption-bounded DFS or a random walk reaches in
/// CI-sized budgets. Here the claim/add race *is* the whole trace, so the
/// mutation suite can assert the checker finds it.
pub fn gate_claim_body() {
    let mbf = Arc::new(tiny_membuffer());
    let mtb = Arc::new(SkipList::new());
    let view = Arc::new(ViewCell::new(MemView {
        mbf: None,
        imm_mbf: None,
        mtb: Arc::clone(&mtb),
        imm_mtb: None,
    }));
    let imm = Arc::new(ImmMembuffer::new(Arc::clone(&mbf)));
    let seq = Arc::new(SequenceGenerator::new());

    // Straggler: an acknowledged put still in flight against the frozen
    // buffer.
    let straggler = {
        let mbf = Arc::clone(&mbf);
        thread::spawn(move || {
            mbf.add(b"straggler", Some(b"w"));
        })
    };

    // Helping writer: claims buckets as soon as the gate allows.
    let helper = {
        let imm = Arc::clone(&imm);
        let view = Arc::clone(&view);
        let seq = Arc::clone(&seq);
        thread::spawn(move || {
            if imm.drain_ready() && !imm.tracker.is_complete() {
                help_drain_imm_via(&imm, &view, &seq, DrainStyle::MultiInsert);
            }
        })
    };

    // Freezer: the grace period — every in-flight write has landed — then
    // open the gate and complete the drain.
    straggler.join().unwrap();
    imm.open_for_drain();
    help_drain_imm_via(&imm, &view, &seq, DrainStyle::MultiInsert);
    helper.join().unwrap();
    assert!(imm.tracker.is_complete());
    assert_eq!(
        imm.buffer.len(),
        0,
        "acknowledged write left in the dropped frozen Membuffer"
    );
}

/// The PR 5 stale-Memtable scenario: a cooperative drain racing a persist
/// switch.
///
/// [`help_drain_imm_via`] resolves the target Memtable *inside each
/// chunk's read-side critical section*, so a persist switch either waits
/// for the in-flight chunk (grace period) or routes later chunks to the
/// fresh table. Mutated (`--cfg flodb_model_mutation` resolves the table
/// once up front), the switch can land between lookup and insert: the
/// batch goes into the immutable table *after* its flush collected
/// entries, and is dropped with it.
pub fn persist_switch_body() {
    let mbf = Arc::new(tiny_membuffer());
    mbf.add(b"acked", Some(b"w"));
    let imm = Arc::new(ImmMembuffer::new(Arc::clone(&mbf)));
    imm.open_for_drain(); // Legitimately open: the freeze finished long ago.
    let old_mtb = Arc::new(SkipList::new());
    let view = Arc::new(ViewCell::new(MemView {
        mbf: None,
        imm_mbf: Some(Arc::clone(&imm)),
        mtb: Arc::clone(&old_mtb),
        imm_mtb: None,
    }));
    let seq = Arc::new(SequenceGenerator::new());

    let helper = {
        let imm = Arc::clone(&imm);
        let view = Arc::clone(&view);
        let seq = Arc::clone(&seq);
        thread::spawn(move || help_drain_imm_via(&imm, &view, &seq, DrainStyle::MultiInsert))
    };

    // Persist switch: swap in a fresh Memtable, "flush" the old one,
    // release it (persist_once's shape, minus the disk).
    let new_mtb = Arc::new(SkipList::new());
    view.update(|old| MemView {
        mtb: Arc::clone(&new_mtb),
        imm_mtb: Some(Arc::clone(&old.mtb)),
        ..old.clone()
    });
    let flushed = old_mtb.get(b"acked").is_some();
    view.update(|old| MemView {
        imm_mtb: None,
        ..old.clone()
    });

    helper.join().unwrap();
    assert!(
        flushed || new_mtb.get(b"acked").is_some(),
        "acknowledged write missed both the flush and the live Memtable"
    );
}

/// Group outcome broadcast: no submitter returns before its record is
/// durable-ordered in the log, whether it led or followed.
pub fn group_commit_broadcast_body() {
    let log = Arc::new(Mutex::new(Vec::<u8>::new()));
    let gc: Arc<GroupCommitter<String>> = Arc::new(GroupCommitter::new(GroupCommitConfig {
        max_group_bytes: 1024,
        frame_prefix: 0,
        max_group_wait: Duration::ZERO,
        follower_spin: 0,
    }));
    let handles: Vec<_> = [b'a', b'b']
        .into_iter()
        .map(|rec| {
            let gc = Arc::clone(&gc);
            let log = Arc::clone(&log);
            thread::spawn(move || {
                gc.submit(
                    |buf| buf.push(rec),
                    |payload| {
                        log.lock().extend_from_slice(payload);
                        Ok(())
                    },
                )
                .expect("commit cannot fail here");
                assert!(
                    log.lock().contains(&rec),
                    "submit returned before its record was committed"
                );
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(log.lock().len(), 2, "every record committed exactly once");
}

/// Error broadcast: when a group's commit fails, **every** member of that
/// group observes the shared error — no record of a failed group is acked.
pub fn group_commit_error_body() {
    let gc: Arc<GroupCommitter<String>> = Arc::new(GroupCommitter::new(GroupCommitConfig {
        max_group_bytes: 1024,
        frame_prefix: 0,
        max_group_wait: Duration::ZERO,
        follower_spin: 0,
    }));
    let handles: Vec<_> = (0..2u8)
        .map(|rec| {
            let gc = Arc::clone(&gc);
            thread::spawn(move || {
                gc.submit(|buf| buf.push(rec), |_| Err("disk on fire".to_string()))
            })
        })
        .collect();
    for h in handles {
        let res = h.join().unwrap();
        let err = res.expect_err("a failed group must fail every member");
        assert_eq!(*err, "disk on fire");
    }
}

/// Injected-failure broadcast: the overlap between the model layer and
/// the deterministic fault Env. The group's commit path appends through
/// a real [`WalWriter`] over a [`FaultEnv`] with the `segment-append`
/// trip point armed — the same error shape the persist thread sees when
/// the log device dies mid-group — and the contract is the same as
/// [`group_commit_error_body`] plus two fault-layer facts: every member
/// observes the *injected* error (not a wrapper that lost the marker),
/// and no frame of a failed group ever lands in the segment.
pub fn group_commit_injected_fault_body() {
    use flodb::storage::fault::is_injected;
    use flodb::storage::wal::{WalWriter, SEGMENT_HEADER_BYTES};
    use flodb::storage::{FaultEnv, FaultKind, FaultPlan, MemEnv, StorageError};

    let env = std::sync::Arc::new(FaultEnv::new(std::sync::Arc::new(MemEnv::new(None))));
    // Create the segment before arming: the fault under test is the
    // append of a formed group, not segment creation.
    let writer = Arc::new(Mutex::new(
        WalWriter::create_segment(&*env, 1, false).expect("segment create is unarmed"),
    ));
    env.arm(FaultPlan::persistent("segment-append", FaultKind::Io));

    let gc: Arc<GroupCommitter<StorageError>> = Arc::new(GroupCommitter::new(GroupCommitConfig {
        max_group_bytes: 1024,
        frame_prefix: 0,
        max_group_wait: Duration::ZERO,
        follower_spin: 0,
    }));
    let handles: Vec<_> = (0..2u8)
        .map(|rec| {
            let gc = Arc::clone(&gc);
            let writer = Arc::clone(&writer);
            thread::spawn(move || {
                gc.submit(
                    |buf| buf.push(rec),
                    |payload| writer.lock().append_payload(payload),
                )
            })
        })
        .collect();
    for h in handles {
        let res = h.join().unwrap();
        let err = res.expect_err("a failed group must fail every member");
        assert!(
            is_injected(&err),
            "member saw a non-injected error: {err}"
        );
    }
    assert!(
        env.injected("segment-append") >= 1,
        "the armed trip point never fired"
    );
    assert_eq!(
        writer.lock().bytes_written(),
        SEGMENT_HEADER_BYTES as u64,
        "a frame of a failed group was counted as written"
    );
}

/// The sharded router's write split vs. per-shard group commit (PR 7).
///
/// Two writers each split one batch into per-shard sub-batches and commit
/// every sub-batch through the owning shard's committer. The router's
/// contract: each sub-batch lands in its shard's log **whole and
/// contiguous** (one frame), exactly once, and the router's applied-ops
/// accounting matches what the logs hold — no lost sub-batch, no
/// double-count, under any interleaving of the two writers across the two
/// committers.
pub fn router_split_body() {
    router_split(false);
}

/// The broken router split for the mutation suite: sub-batch records are
/// appended to the shard's log *outside* the committer's critical
/// section, one record at a time. A concurrent writer can interleave its
/// own records mid-sub-batch, tearing the frame — the checker must find
/// the schedule that does.
pub fn router_split_broken_body() {
    router_split(true);
}

fn router_split(broken: bool) {
    const WRITERS: usize = 2;
    const SHARDS: usize = 2;
    /// One distinct byte per (writer, shard, op) record.
    fn tag(w: usize, s: usize, i: usize) -> u8 {
        (w * 4 + s * 2 + i) as u8
    }
    type ShardLane = (Arc<GroupCommitter<String>>, Arc<Mutex<Vec<u8>>>);
    let shards: Vec<ShardLane> = (0..SHARDS)
        .map(|_| {
            (
                Arc::new(GroupCommitter::new(GroupCommitConfig {
                    max_group_bytes: 1024,
                    frame_prefix: 0,
                    max_group_wait: Duration::ZERO,
                    follower_spin: 0,
                })),
                Arc::new(Mutex::new(Vec::<u8>::new())),
            )
        })
        .collect();
    let applied = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let shards = shards.clone();
            let applied = Arc::clone(&applied);
            thread::spawn(move || {
                // The split: this writer's batch holds two ops for every
                // shard; each shard's pair is one sub-batch.
                for (s, (gc, log)) in shards.iter().enumerate() {
                    let ops = [tag(w, s, 0), tag(w, s, 1)];
                    if broken {
                        // Mutation: the sub-batch bypasses the committer
                        // and lands one record at a time.
                        log.lock().push(ops[0]);
                        thread::yield_now();
                        log.lock().push(ops[1]);
                    } else {
                        gc.submit(
                            |buf| buf.extend_from_slice(&ops),
                            |payload| {
                                log.lock().extend_from_slice(payload);
                                Ok(())
                            },
                        )
                        .expect("commit cannot fail here");
                    }
                    // Router stats: one bump per committed sub-batch.
                    applied.fetch_add(ops.len(), Ordering::SeqCst);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut total = 0;
    for (s, (_, log)) in shards.iter().enumerate() {
        let log = log.lock();
        total += log.len();
        for w in 0..WRITERS {
            let (a, b) = (tag(w, s, 0), tag(w, s, 1));
            assert_eq!(
                log.iter().filter(|&&x| x == a).count(),
                1,
                "sub-batch record committed more than once (double-count)"
            );
            let ia = log.iter().position(|&x| x == a).expect("lost sub-batch");
            let ib = log.iter().position(|&x| x == b).expect("lost sub-batch");
            assert_eq!(ib, ia + 1, "sub-batch torn across the shard's log");
        }
    }
    assert_eq!(total, WRITERS * SHARDS * 2, "lost sub-batch records");
    assert_eq!(
        applied.load(Ordering::SeqCst),
        WRITERS * SHARDS * 2,
        "router accounting diverged from the logs"
    );
}

/// `PhasedInflight` grace coverage: after `quiesce_with` returns, every
/// write logged before the quiesce began has also been applied — the
/// property WAL segment retirement stands on.
pub fn inflight_grace_body() {
    let inflight = Arc::new(PhasedInflight::new());
    let logged = Arc::new(AtomicUsize::new(0));
    let applied = Arc::new(AtomicUsize::new(0));
    let writers: Vec<_> = (0..2)
        .map(|_| {
            let inflight = Arc::clone(&inflight);
            let logged = Arc::clone(&logged);
            let applied = Arc::clone(&applied);
            thread::spawn(move || {
                let g = inflight.enter(); // window opens
                logged.fetch_add(1, Ordering::SeqCst); // record hits the WAL
                thread::yield_now(); // group-commit parking, room stalls...
                applied.fetch_add(1, Ordering::SeqCst); // lands in memory
                drop(g); // window closes
            })
        })
        .collect();
    let logged_before = logged.load(Ordering::SeqCst);
    inflight.quiesce_with(|| {});
    assert!(
        applied.load(Ordering::SeqCst) >= logged_before,
        "grace period missed a logged-but-unapplied window"
    );
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(inflight.open_windows(), 0);
}

/// RCU grace periods on the view cell: `update` never returns while a
/// reader of the *old* view is still inside its critical section — the
/// reader's insert must be visible in the frozen table by the time the
/// switch completes (readers never observe, or mutate, a collected view).
pub fn rcu_view_switch_body() {
    let old_mtb = Arc::new(SkipList::new());
    let view = Arc::new(ViewCell::new(MemView {
        mbf: None,
        imm_mbf: None,
        mtb: Arc::clone(&old_mtb),
        imm_mtb: None,
    }));
    let reader = {
        let view = Arc::clone(&view);
        let old_mtb = Arc::clone(&old_mtb);
        thread::spawn(move || {
            view.read(|v| {
                let saw_old = Arc::ptr_eq(&v.mtb, &old_mtb);
                thread::yield_now(); // stretch the critical section
                v.mtb.insert(b"r", Some(b"1"), 7);
                saw_old
            })
        })
    };
    let new_mtb = Arc::new(SkipList::new());
    view.update(|old| MemView {
        mtb: Arc::clone(&new_mtb),
        imm_mtb: Some(Arc::clone(&old.mtb)),
        ..old.clone()
    });
    // Snapshot *at the moment update returned*: the grace guarantee.
    let old_len_at_return = old_mtb.len();
    let saw_old = reader.join().unwrap();
    if saw_old {
        assert_eq!(
            old_len_at_return, 1,
            "update returned while a reader of the old view was mid-insert"
        );
    } else {
        assert_eq!(new_mtb.len(), 1, "the reader of the new view inserted there");
    }
}

/// The flight recorder's publish path (PR 10): the seqlock claim/publish
/// protocol of `TraceRing` under concurrent writers and a racing dump.
///
/// Two writers push events into a two-slot ring while a dumper reads it
/// mid-flight; every event carries the invariant `b == a ^ MAGIC`, so a
/// torn read (payload from two different events, or a half-written
/// slot) breaks the pair. The ring's atomics come from
/// `flodb_sync::shim`, so the checker explores interleavings of the
/// actual claim CAS, payload stores, and publishing Release store. After
/// both writers join, every slot must have settled published: the final
/// dump holds exactly `capacity` events and accounts, with `dropped`,
/// for every push.
pub fn trace_ring_body() {
    use flodb::core::telemetry::{TraceEventKind, TraceRing};
    const MAGIC: u64 = 0xD00D_F10D;

    let ring = Arc::new(TraceRing::with_capacity(2));
    let writers: Vec<_> = (0..2u64)
        .map(|t| {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                for i in 0..2u64 {
                    let a = t * 100 + i;
                    ring.push(TraceEventKind::IoRetry, t as u32, a, a ^ MAGIC);
                }
            })
        })
        .collect();
    // A dump racing the writers may see fewer events, but never a torn
    // payload and never out-of-order tickets.
    let dumper = {
        let ring = Arc::clone(&ring);
        thread::spawn(move || {
            let events = ring.dump();
            assert!(events.iter().all(|e| e.b == e.a ^ MAGIC), "torn payload");
            assert!(events.windows(2).all(|w| w[0].ticket < w[1].ticket));
        })
    };
    for w in writers {
        w.join().unwrap();
    }
    dumper.join().unwrap();
    // Quiescent: claims either published or dropped, nothing mid-write.
    let events = ring.dump();
    assert_eq!(ring.recorded(), 4, "every push took a ticket");
    assert_eq!(
        events.len(),
        2,
        "both slots end published (dropped laps keep the previous event)"
    );
    assert!(events.iter().all(|e| e.b == e.a ^ MAGIC));
    assert!(ring.dropped() <= 2, "at most one lapped push per slot");
}
