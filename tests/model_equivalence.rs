//! Property-based model equivalence: every system in the repository must
//! behave exactly like a `BTreeMap` under arbitrary sequential operation
//! sequences — gets, scans, overwrites, deletes, everything.

use std::collections::BTreeMap;
use std::sync::Arc;

use flodb::baselines::{
    BaselineOptions, HyperLevelDbStore, LevelDbStore, MemtableKind, RocksDbClsmStore,
    RocksDbStore,
};
use flodb::{FloDb, FloDbOptions, KvStore};
use proptest::prelude::*;

/// One step of the random workload.
#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8),
    Delete(u8),
    Get(u8),
    Scan(u8, u8),
    /// Force the memory component down to disk (FloDB only; baselines
    /// quiesce instead).
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
        2 => any::<u8>().prop_map(Op::Delete),
        3 => any::<u8>().prop_map(Op::Get),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Scan(a, b)),
        1 => Just(Op::Flush),
    ]
}

fn key(k: u8) -> [u8; 8] {
    // Spread the key space so several Membuffer partitions participate.
    (u64::from(k) << 56 | u64::from(k)).to_be_bytes()
}

fn apply_ops(store: &dyn KvStore, flush: impl Fn(), ops: &[Op]) {
    let mut model: BTreeMap<[u8; 8], Vec<u8>> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Put(k, v) => {
                store.put(&key(k), &[v]).unwrap();
                model.insert(key(k), vec![v]);
            }
            Op::Delete(k) => {
                store.delete(&key(k)).unwrap();
                model.remove(&key(k));
            }
            Op::Get(k) => {
                assert_eq!(
                    store.get(&key(k)),
                    model.get(&key(k)).cloned(),
                    "get({k}) diverged on {}",
                    store.name()
                );
            }
            Op::Scan(a, b) => {
                let (lo, hi) = (a.min(b), a.max(b));
                let got = store.scan(&key(lo), &key(hi));
                let want: Vec<(Vec<u8>, Vec<u8>)> = model
                    .range(key(lo)..=key(hi))
                    .map(|(k, v)| (k.to_vec(), v.clone()))
                    .collect();
                assert_eq!(got, want, "scan({lo},{hi}) diverged on {}", store.name());
            }
            Op::Flush => flush(),
        }
    }
    // Final full sweep: every key agrees.
    for k in 0..=255u8 {
        assert_eq!(
            store.get(&key(k)),
            model.get(&key(k)).cloned(),
            "final get({k}) diverged on {}",
            store.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // Each case replays ~120 ops on 5 stores.
        ..ProptestConfig::default()
    })]

    #[test]
    fn flodb_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let db = FloDb::open(FloDbOptions::small_for_tests()).unwrap();
        apply_ops(&db, || db.flush_all(), &ops);
    }

    #[test]
    fn flodb_without_membuffer_matches_btreemap(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let mut opts = FloDbOptions::small_for_tests();
        opts.membuffer_enabled = false;
        opts.drain_threads = 0;
        let db = FloDb::open(opts).unwrap();
        apply_ops(&db, || db.flush_all(), &ops);
    }

    #[test]
    fn leveldb_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let db = Arc::new(LevelDbStore::open(BaselineOptions::small_for_tests()));
        let flush_ref = Arc::clone(&db);
        apply_ops(&*db, move || flush_ref.quiesce(), &ops);
    }

    #[test]
    fn hyperleveldb_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let db = Arc::new(HyperLevelDbStore::open(BaselineOptions::small_for_tests()));
        let flush_ref = Arc::clone(&db);
        apply_ops(&*db, move || flush_ref.quiesce(), &ops);
    }

    #[test]
    fn rocksdb_skiplist_matches_btreemap(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let db = Arc::new(RocksDbStore::open(BaselineOptions::small_for_tests()));
        let flush_ref = Arc::clone(&db);
        apply_ops(&*db, move || flush_ref.quiesce(), &ops);
    }

    #[test]
    fn rocksdb_hashtable_matches_btreemap(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let mut opts = BaselineOptions::small_for_tests();
        opts.memtable = MemtableKind::HashTable;
        let db = Arc::new(RocksDbStore::open(opts));
        let flush_ref = Arc::clone(&db);
        apply_ops(&*db, move || flush_ref.quiesce(), &ops);
    }

    #[test]
    fn rocksdb_clsm_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let db = Arc::new(RocksDbClsmStore::open(BaselineOptions::small_for_tests()));
        let flush_ref = Arc::clone(&db);
        apply_ops(&*db, move || flush_ref.quiesce(), &ops);
    }
}

/// All five systems replay the *same* seeded random workload and must end
/// in identical states — the cross-system differential test.
#[test]
fn all_systems_agree_on_a_seeded_workload() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let mut rng = SmallRng::seed_from_u64(0xF10D_B);
    let ops: Vec<Op> = (0..2000)
        .map(|_| match rng.gen_range(0..10) {
            0..=4 => Op::Put(rng.gen(), rng.gen()),
            5..=6 => Op::Delete(rng.gen()),
            7..=8 => Op::Get(rng.gen()),
            _ => Op::Scan(rng.gen(), rng.gen()),
        })
        .collect();

    let flodb = Arc::new(FloDb::open(FloDbOptions::small_for_tests()).unwrap());
    let stores: Vec<Arc<dyn KvStore>> = vec![
        Arc::clone(&flodb) as Arc<dyn KvStore>,
        Arc::new(LevelDbStore::open(BaselineOptions::small_for_tests())),
        Arc::new(HyperLevelDbStore::open(BaselineOptions::small_for_tests())),
        Arc::new(RocksDbStore::open(BaselineOptions::small_for_tests())),
        Arc::new(RocksDbClsmStore::open(BaselineOptions::small_for_tests())),
    ];
    for store in &stores {
        apply_ops(&**store, || {}, &ops);
    }
    // Pairwise-equal final scans.
    let reference = stores[0].scan(&key(0), &key(255));
    for store in &stores[1..] {
        assert_eq!(
            store.scan(&key(0), &key(255)),
            reference,
            "{} diverged from FloDB",
            store.name()
        );
    }
}
