//! Group-commit WAL integration tests: concurrent writers must lose and
//! reorder nothing, and a store killed mid-workload under group commit
//! must recover exactly the acknowledged writes — the same state the
//! legacy single-frame-per-put pipeline recovers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use flodb::storage::{wal, Env, MemEnv, Record};
use flodb::{FloDb, FloDbOptions, KvStore, WalMode, WriteBatch};

fn wal_opts(env: Arc<dyn Env>, group_commit: bool) -> FloDbOptions {
    let mut opts = FloDbOptions::small_for_tests();
    opts.env = env;
    opts.wal = WalMode::Enabled { sync: false };
    opts.wal_group_commit = group_commit;
    opts
}

/// Replays every log segment in `env`, in generation order.
fn replay_all(env: &dyn Env) -> Vec<Record> {
    let mut logs: Vec<(u64, String)> = env
        .list()
        .unwrap()
        .into_iter()
        .filter_map(|n| wal::parse_wal_name(&n).map(|generation| (generation, n)))
        .collect();
    logs.sort();
    let mut records = Vec::new();
    for (generation, log) in logs {
        records.extend(wal::replay_segment(env, &log, generation).unwrap().records);
    }
    records
}

fn key(thread: u64, i: u64) -> [u8; 16] {
    let mut k = [0u8; 16];
    k[..8].copy_from_slice(&thread.to_be_bytes());
    k[8..].copy_from_slice(&i.to_be_bytes());
    k
}

/// Walks the raw bytes of every log in `env` and returns the number of
/// records inside each intact frame, in log order.
fn records_per_frame(env: &dyn Env) -> Vec<usize> {
    let mut logs: Vec<String> = env
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| n.ends_with(".log"))
        .collect();
    logs.sort();
    let mut frames = Vec::new();
    for log in logs {
        let file = env.open_random(&log).unwrap();
        let data = file.read_at(0, file.len() as usize).unwrap();
        // Frames start after the generation-numbered segment header.
        let mut pos = wal::SEGMENT_HEADER_BYTES;
        while pos + 8 <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            assert!(pos + 8 + len <= data.len(), "torn frame in a clean log");
            let payload = &data[pos + 8..pos + 8 + len];
            let mut p = 0usize;
            let mut records = 0usize;
            while p < payload.len() {
                Record::decode_from(payload, &mut p).unwrap();
                records += 1;
            }
            frames.push(records);
            pos += 8 + len;
        }
    }
    frames
}

#[test]
fn write_batch_emits_exactly_one_group_frame() {
    // The atomicity contract rests on this: recovery truncates at frame
    // granularity, so an N-op batch is all-or-nothing exactly when it
    // occupies one frame — under both WAL pipelines.
    const OPS: usize = 23;
    for group_commit in [true, false] {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
        {
            let db = FloDb::open(wal_opts(Arc::clone(&env), group_commit)).unwrap();
            let mut batch = WriteBatch::new();
            for i in 0..OPS as u64 - 1 {
                batch.put(&key(0, i), &i.to_le_bytes());
            }
            batch.delete(&key(0, 0));
            db.write(&batch).unwrap();
            let stats = db.stats();
            assert_eq!(stats.wal_groups, 1, "group={group_commit}");
            assert_eq!(stats.wal_group_records, OPS as u64, "group={group_commit}");
            // Crash without flushing so the log survives inspection.
        }
        assert_eq!(
            records_per_frame(env.as_ref()),
            vec![OPS],
            "an {OPS}-op batch must land as one frame holding all its \
             records (group={group_commit})"
        );
    }
}

#[test]
fn concurrent_group_commit_loses_and_reorders_nothing() {
    const THREADS: u64 = 8;
    const OPS: u64 = 400;
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    let db = Arc::new(FloDb::open(wal_opts(Arc::clone(&env), true)).unwrap());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for i in 0..OPS {
                db.put(&key(t, i), &i.to_le_bytes()).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Every write went through the group committer, and leader + follower
    // acks account for every record.
    let stats = db.stats();
    assert_eq!(stats.wal_group_records, THREADS * OPS);
    assert!(stats.wal_groups >= 1);
    assert!(stats.wal_groups <= THREADS * OPS);
    let followers = db
        .flodb_stats()
        .wal_follower_writes
        .load(Ordering::Relaxed);
    assert_eq!(stats.wal_groups + followers, THREADS * OPS);

    drop(db); // Crash: no flush, the logs are the only durable state.

    let records = replay_all(env.as_ref());
    assert_eq!(records.len(), (THREADS * OPS) as usize, "no lost records");

    // Log order must equal sequence order: sequence numbers are sampled
    // inside the committer's critical section, so the log is totally
    // ordered even across groups.
    for pair in records.windows(2) {
        assert!(
            pair[0].seq < pair[1].seq,
            "log order and sequence order diverge: {} then {}",
            pair[0].seq,
            pair[1].seq
        );
    }

    // Per-thread program order is preserved, and nothing is duplicated.
    for t in 0..THREADS {
        let mine: Vec<u64> = records
            .iter()
            .filter(|r| r.key[..8] == t.to_be_bytes())
            .map(|r| u64::from_be_bytes(r.key[8..].try_into().unwrap()))
            .collect();
        let expected: Vec<u64> = (0..OPS).collect();
        assert_eq!(mine, expected, "thread {t} lost or reordered writes");
    }
}

#[test]
fn group_commit_recovers_identically_to_legacy_pipeline() {
    // The same deterministic concurrent workload (disjoint key ranges per
    // thread, so the final state is well-defined) run under both WAL
    // pipelines, then crashed and recovered: the visible state must match
    // exactly. This is the recovery-equivalence contract that lets group
    // commit replace the per-put pipeline.
    const THREADS: u64 = 4;
    const OPS: u64 = 300;
    let run = |group_commit: bool| -> Vec<(Vec<u8>, Vec<u8>)> {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
        {
            let db = Arc::new(FloDb::open(wal_opts(Arc::clone(&env), group_commit)).unwrap());
            let mut handles = Vec::new();
            for t in 0..THREADS {
                let db = Arc::clone(&db);
                handles.push(std::thread::spawn(move || {
                    for i in 0..OPS {
                        // Writes, overwrites and tombstones, all replayed.
                        db.put(&key(t, i % 64), &(t * OPS + i).to_le_bytes()).unwrap();
                        if i % 5 == 0 {
                            db.delete(&key(t, (i + 1) % 64)).unwrap();
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            // Crash without quiescing.
        }
        let db = FloDb::open(wal_opts(env, group_commit)).unwrap();
        db.scan(&key(0, 0), &key(THREADS, 0))
    };
    let via_group = run(true);
    let via_legacy = run(false);
    assert!(!via_group.is_empty());
    assert_eq!(
        via_group, via_legacy,
        "group-commit recovery diverged from the single-frame pipeline"
    );
}

#[test]
fn killed_mid_workload_recovers_every_acknowledged_write() {
    const THREADS: u64 = 4;
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    let stop = Arc::new(AtomicBool::new(false));
    // Writers record what was acknowledged; the store is then dropped
    // mid-workload (drop joins in-flight operations, so this models a
    // crash immediately after the last ack).
    let acked: Vec<_> = {
        let db = Arc::new(FloDb::open(wal_opts(Arc::clone(&env), true)).unwrap());
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut acked = Vec::new();
                let mut i = 0u64;
                while !stop.load(Ordering::Acquire) {
                    db.put(&key(t, i), &i.to_le_bytes()).unwrap();
                    acked.push(i);
                    i += 1;
                }
                acked
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(150));
        stop.store(true, Ordering::Release);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    };

    let db = FloDb::open(wal_opts(env, true)).unwrap();
    let mut total = 0u64;
    for (t, thread_acks) in acked.iter().enumerate() {
        for &i in thread_acks {
            assert_eq!(
                db.get(&key(t as u64, i)),
                Some(i.to_le_bytes().to_vec()),
                "acknowledged write (thread {t}, op {i}) lost in recovery"
            );
            total += 1;
        }
    }
    assert!(total > 0, "workload must have acknowledged something");
}
