//! Workspace smoke test: guards the build system itself.
//!
//! If a future PR breaks a crate manifest, a re-export, or the
//! `FloDb`/`KvStore` front-door API, this test fails before anything
//! subtler does. It deliberately exercises only the public umbrella-crate
//! surface: open, put/get/delete/scan, and the stats counters.

use std::ops::ControlFlow;

use flodb::{Error, FloDb, FloDbOptions, KvStore, WriteBatch};

#[test]
fn open_crud_scan_and_stats_counters_move() {
    let db = FloDb::open(FloDbOptions::small_for_tests()).unwrap();

    // Put + get round-trip.
    db.put(b"smoke:a", b"1").unwrap();
    db.put(b"smoke:b", b"2").unwrap();
    db.put(b"smoke:c", b"3").unwrap();
    assert_eq!(db.get(b"smoke:a"), Some(b"1".to_vec()));
    assert_eq!(db.get(b"smoke:missing"), None);

    // Overwrite keeps the latest value.
    db.put(b"smoke:a", b"1'").unwrap();
    assert_eq!(db.get(b"smoke:a"), Some(b"1'".to_vec()));

    // Range scan sees all live keys, sorted.
    let entries = db.scan(b"smoke:", b"smoke:~");
    assert_eq!(entries.len(), 3);
    assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));

    // Delete hides the key from both get and scan.
    db.delete(b"smoke:b").unwrap();
    assert_eq!(db.get(b"smoke:b"), None);
    assert_eq!(db.scan(b"smoke:", b"smoke:~").len(), 2);

    // The uniform KvStore stats counters moved.
    let s = db.stats();
    assert_eq!(s.puts, 4, "puts counted");
    assert_eq!(s.deletes, 1, "deletes counted");
    assert_eq!(s.gets, 4, "gets counted");
    assert_eq!(s.scans, 2, "scans counted");
    assert_eq!(s.scanned_keys, 5, "scanned keys accumulated");

    // The detailed FloDbStats view is reachable through the re-export and
    // agrees that every write was absorbed by one of the two memory levels.
    let detailed = db.flodb_stats();
    let fast = detailed
        .membuffer_writes
        .load(std::sync::atomic::Ordering::Relaxed);
    let slow = detailed
        .memtable_writes
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(fast + slow, 5, "all writes routed through a memory level");
}

#[test]
fn batch_and_streaming_scan_front_door() {
    // The v2 surface through the umbrella re-exports: `WriteBatch`,
    // `KvStore::write`, `scan_with` with early termination, and `?` over
    // the unified `Error`.
    fn run() -> Result<(), Error> {
        let db = FloDb::open(FloDbOptions::small_for_tests())?;
        let mut batch = WriteBatch::new();
        batch.put(b"smoke:a", b"1").put(b"smoke:b", b"2");
        batch.delete(b"smoke:a");
        db.write(&batch)?;
        assert_eq!(db.get(b"smoke:a"), None);
        assert_eq!(db.get(b"smoke:b"), Some(b"2".to_vec()));

        let mut visited = 0;
        db.scan_with(b"smoke:", b"smoke:~", &mut |key, value| {
            assert_eq!(key, b"smoke:b");
            assert_eq!(value, b"2");
            visited += 1;
            ControlFlow::Break(())
        });
        assert_eq!(visited, 1);
        Ok(())
    }
    run().unwrap();
}
