//! Crash-recovery integration tests: the write-ahead log must reconstruct
//! the memory component after a crash (§2.1 "the recovery process can
//! re-construct any lost operations from the log").

use std::sync::Arc;

use flodb::storage::{Env, FsEnv, MemEnv};
use flodb::{FloDb, FloDbOptions, KvStore, WalMode, WriteBatch};

fn key(n: u64) -> [u8; 8] {
    n.to_be_bytes()
}

fn wal_opts(env: Arc<dyn Env>, sync: bool) -> FloDbOptions {
    let mut opts = FloDbOptions::small_for_tests();
    opts.env = env;
    opts.wal = WalMode::Enabled { sync };
    opts
}

#[test]
fn recovery_restores_puts_and_tombstones() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    {
        let db = FloDb::open(wal_opts(Arc::clone(&env), false)).unwrap();
        for i in 0..500u64 {
            db.put(&key(i), &i.to_le_bytes()).unwrap();
        }
        for i in (0..500u64).step_by(5) {
            db.delete(&key(i)).unwrap();
        }
        // Crash: drop without quiescing or flushing.
    }
    let db = FloDb::open(wal_opts(env, false)).unwrap();
    for i in 0..500u64 {
        let got = db.get(&key(i));
        if i % 5 == 0 {
            assert_eq!(got, None, "tombstone for key {i} lost");
        } else {
            assert_eq!(got, Some(i.to_le_bytes().to_vec()), "key {i} lost");
        }
    }
}

#[test]
fn recovery_preserves_overwrite_order() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    {
        let db = FloDb::open(wal_opts(Arc::clone(&env), false)).unwrap();
        for round in 0..20u64 {
            for i in 0..50u64 {
                db.put(&key(i), &(round * 100 + i).to_le_bytes()).unwrap();
            }
        }
    }
    let db = FloDb::open(wal_opts(env, false)).unwrap();
    for i in 0..50u64 {
        assert_eq!(
            db.get(&key(i)),
            Some((19 * 100 + i).to_le_bytes().to_vec()),
            "key {i} must recover its final value"
        );
    }
}

#[test]
fn sequence_numbers_resume_past_recovered_log() {
    // After recovery, new writes must shadow recovered ones — i.e. the
    // sequence generator must resume strictly after every replayed entry.
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    {
        let db = FloDb::open(wal_opts(Arc::clone(&env), false)).unwrap();
        db.put(b"k", b"before-crash").unwrap();
    }
    let db = FloDb::open(wal_opts(Arc::clone(&env), false)).unwrap();
    db.put(b"k", b"after-crash").unwrap();
    assert_eq!(db.get(b"k").as_deref(), Some(b"after-crash".as_slice()));
    // Survives draining and flushing (ordering is by sequence number once
    // both versions meet in the same level).
    db.flush_all();
    assert_eq!(db.get(b"k").as_deref(), Some(b"after-crash".as_slice()));
}

#[test]
fn double_crash_replays_multiple_logs() {
    // Each open starts a new log generation; a second crash must replay
    // both logs in order.
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    {
        let db = FloDb::open(wal_opts(Arc::clone(&env), false)).unwrap();
        db.put(b"a", b"1").unwrap();
        db.put(b"b", b"1").unwrap();
    }
    {
        let db = FloDb::open(wal_opts(Arc::clone(&env), false)).unwrap();
        db.put(b"b", b"2").unwrap(); // Overwrites generation-1 value.
        db.put(b"c", b"2").unwrap();
    }
    let db = FloDb::open(wal_opts(env, false)).unwrap();
    assert_eq!(db.get(b"a").as_deref(), Some(b"1".as_slice()));
    assert_eq!(db.get(b"b").as_deref(), Some(b"2".as_slice()), "later log wins");
    assert_eq!(db.get(b"c").as_deref(), Some(b"2".as_slice()));
}

#[test]
fn synced_wal_round_trips_on_real_files() {
    // FsEnv writes real files; exercise the whole recovery path on disk.
    let dir = std::env::temp_dir().join(format!(
        "flodb-wal-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let env: Arc<dyn Env> = Arc::new(FsEnv::new(&dir).unwrap());
    {
        let db = FloDb::open(wal_opts(Arc::clone(&env), true)).unwrap();
        for i in 0..100u64 {
            db.put(&key(i), b"durable").unwrap();
        }
        db.delete(&key(7)).unwrap();
    }
    let db = FloDb::open(wal_opts(env, true)).unwrap();
    assert_eq!(db.get(&key(7)), None);
    for i in 0..100u64 {
        if i != 7 {
            assert_eq!(db.get(&key(i)).as_deref(), Some(b"durable".as_slice()));
        }
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovered_entries_are_scannable() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    {
        let db = FloDb::open(wal_opts(Arc::clone(&env), false)).unwrap();
        for i in [3u64, 1, 4, 1, 5, 9, 2, 6] {
            db.put(&key(i), &i.to_le_bytes()).unwrap();
        }
    }
    let db = FloDb::open(wal_opts(env, false)).unwrap();
    let out = db.scan(&key(0), &key(10));
    let got: Vec<u64> = out
        .iter()
        .map(|(k, _)| u64::from_be_bytes(k.as_slice().try_into().unwrap()))
        .collect();
    assert_eq!(got, vec![1, 2, 3, 4, 5, 6, 9]);
}

#[test]
fn manifest_recovers_flushed_data_without_wal() {
    // The disk component's MANIFEST makes flushed data survive a restart
    // even with the WAL off: only the memory component is lost.
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    let mut opts = FloDbOptions::small_for_tests();
    opts.env = Arc::clone(&env);
    {
        let db = FloDb::open(opts.clone()).unwrap();
        for i in 0..300u64 {
            db.put(&key(i), b"flushed").unwrap();
        }
        db.flush_all();
        db.put(b"memory-only", b"gone").unwrap();
    }
    let db = FloDb::open(opts).unwrap();
    for i in 0..300u64 {
        assert_eq!(
            db.get(&key(i)).as_deref(),
            Some(b"flushed".as_slice()),
            "flushed key {i} must survive via the manifest"
        );
    }
    assert_eq!(db.get(b"memory-only"), None, "unflushed write is lost");
    // Scans work over the recovered layout.
    assert_eq!(db.scan(&key(0), &key(299)).len(), 300);
}

#[test]
fn wal_plus_manifest_restores_everything() {
    // Full durability: flushed data via the manifest, tail via the WAL.
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    {
        let db = FloDb::open(wal_opts(Arc::clone(&env), false)).unwrap();
        for i in 0..200u64 {
            db.put(&key(i), b"old").unwrap();
        }
        db.flush_all();
        for i in 100..250u64 {
            db.put(&key(i), b"new").unwrap(); // Tail only in WAL + memory.
        }
        db.delete(&key(0)).unwrap();
    }
    let db = FloDb::open(wal_opts(Arc::clone(&env), false)).unwrap();
    assert_eq!(db.get(&key(0)), None);
    assert_eq!(db.get(&key(50)).as_deref(), Some(b"old".as_slice()));
    assert_eq!(db.get(&key(150)).as_deref(), Some(b"new".as_slice()));
    assert_eq!(db.get(&key(249)).as_deref(), Some(b"new".as_slice()));
    assert_eq!(db.scan(&key(0), &key(249)).len(), 249);
    // Consumed logs were pruned; a fresh generation exists for new writes.
    let logs = env
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| n.ends_with(".log"))
        .count();
    assert_eq!(logs, 1, "exactly the new generation's log should remain");
}

#[test]
fn repeated_restarts_accumulate_nothing() {
    // Ten crash/recover cycles: state stays exactly right and log files do
    // not pile up.
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    for round in 0..10u64 {
        let db = FloDb::open(wal_opts(Arc::clone(&env), false)).unwrap();
        db.put(&key(round), &round.to_le_bytes()).unwrap();
        for prev in 0..=round {
            assert_eq!(
                db.get(&key(prev)),
                Some(prev.to_le_bytes().to_vec()),
                "round {round}, key {prev}"
            );
        }
    }
    let logs = env
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| n.ends_with(".log"))
        .count();
    assert!(logs <= 1, "replayed logs must be pruned, found {logs}");
}

#[test]
fn legacy_per_put_pipeline_recovers_identically() {
    // The pre-group-commit pipeline (`wal_group_commit: false`) stays a
    // supported ablation; its recovery semantics must be unchanged, and
    // the two pipelines' logs must be mutually readable (a store written
    // under one mode reopens under the other).
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    {
        let mut opts = wal_opts(Arc::clone(&env), false);
        opts.wal_group_commit = false;
        let db = FloDb::open(opts).unwrap();
        for i in 0..100u64 {
            db.put(&key(i), b"legacy").unwrap();
        }
        db.delete(&key(3)).unwrap();
    }
    // Reopen under group commit: the log replays regardless of the
    // pipeline that wrote it.
    let db = FloDb::open(wal_opts(Arc::clone(&env), false)).unwrap();
    assert_eq!(db.get(&key(3)), None);
    assert_eq!(db.get(&key(42)).as_deref(), Some(b"legacy".as_slice()));
    db.put(&key(200), b"group").unwrap();
    drop(db);
    // And back again under the legacy pipeline.
    let mut opts = wal_opts(env, false);
    opts.wal_group_commit = false;
    let db = FloDb::open(opts).unwrap();
    assert_eq!(db.get(&key(42)).as_deref(), Some(b"legacy".as_slice()));
    assert_eq!(db.get(&key(200)).as_deref(), Some(b"group".as_slice()));
}

#[test]
fn kill_mid_batch_recovers_batches_all_or_nothing() {
    // Concurrent threads commit multi-op batches, then the store is killed
    // at *every sampled byte offset* of the log (a crash can tear the file
    // anywhere). Recovery must never resurrect part of a batch: for every
    // (thread, batch), either all of its operations are visible or none —
    // and each thread's surviving batches form a prefix of its
    // acknowledged sequence.
    const THREADS: u64 = 3;
    const BATCHES: u64 = 40;
    const OPS_PER_BATCH: u64 = 5;
    fn bkey(t: u64, b: u64, j: u64) -> [u8; 24] {
        let mut k = [0u8; 24];
        k[..8].copy_from_slice(&t.to_be_bytes());
        k[8..16].copy_from_slice(&b.to_be_bytes());
        k[16..].copy_from_slice(&j.to_be_bytes());
        k
    }
    fn batch_opts(env: Arc<dyn Env>) -> FloDbOptions {
        let mut opts = wal_opts(env, false);
        opts.wal_group_commit = true;
        // No background flushes: the log stays the only durable state, so
        // the cut sweep below only has to replicate the log file.
        opts.persist_enabled = false;
        opts
    }
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    {
        let db = Arc::new(FloDb::open(batch_opts(Arc::clone(&env))).unwrap());
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                let mut batch = WriteBatch::new();
                for b in 0..BATCHES {
                    for j in 0..OPS_PER_BATCH {
                        batch.put(&bkey(t, b, j), &b.to_le_bytes());
                    }
                    db.write(&batch).unwrap();
                    batch.clear();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Crash without flushing.
    }

    let log_name = env
        .list()
        .unwrap()
        .into_iter()
        .find(|n| n.ends_with(".log"))
        .expect("the workload must leave a log");
    let file = env.open_random(&log_name).unwrap();
    let bytes = file.read_at(0, file.len() as usize).unwrap();

    let mut cuts: Vec<usize> = (0..bytes.len()).step_by(257).collect();
    cuts.push(bytes.len()); // The clean-shutdown case: everything survives.
    for cut in cuts {
        let torn: Arc<dyn Env> = Arc::new(MemEnv::new(None));
        let mut f = torn.new_writable(&log_name).unwrap();
        f.append(&bytes[..cut]).unwrap();
        f.finish().unwrap();
        let db = FloDb::open(batch_opts(Arc::clone(&torn))).unwrap();
        for t in 0..THREADS {
            let mut lost_from = None;
            for b in 0..BATCHES {
                let present = (0..OPS_PER_BATCH)
                    .filter(|&j| db.get(&bkey(t, b, j)).is_some())
                    .count() as u64;
                assert!(
                    present == 0 || present == OPS_PER_BATCH,
                    "cut {cut}: thread {t} batch {b} recovered \
                     {present}/{OPS_PER_BATCH} ops — a torn batch"
                );
                if present == 0 {
                    lost_from.get_or_insert(b);
                } else {
                    assert_eq!(
                        lost_from, None,
                        "cut {cut}: thread {t} batch {b} survived although \
                         an earlier acknowledged batch was lost"
                    );
                }
            }
            if cut == bytes.len() {
                assert_eq!(
                    lost_from, None,
                    "untruncated log must recover every batch (thread {t})"
                );
            }
        }
    }
}

#[test]
fn sharded_kill_at_any_offset_recovers_whole_sub_batch_prefixes() {
    // The sharded router splits every batch into per-shard sub-batches,
    // each committed as one annotated frame in that shard's WAL. Kill the
    // store, then tear *each shard's log* at every sampled byte offset:
    // the torn shard must recover a whole-sub-batch prefix of the batches
    // routed to it — never part of a sub-batch — while intact shards keep
    // everything. (Cross-shard, a strict subset of a batch's shards
    // surviving is the documented relaxed contract.)
    use flodb::{ShardedFloDb, ShardedOptions};
    const SHARDS: u32 = 3;
    const BATCHES: u64 = 30;
    const OPS_PER_BATCH: u64 = 6;
    fn bkey(b: u64, j: u64) -> [u8; 16] {
        let mut k = [0u8; 16];
        k[..8].copy_from_slice(&b.to_be_bytes());
        k[8..].copy_from_slice(&j.to_be_bytes());
        k
    }
    fn sharded_opts(env: Arc<dyn Env>) -> ShardedOptions {
        let mut base = wal_opts(env, false);
        base.wal_group_commit = true;
        // No background flushes: the logs stay the only durable state, so
        // the sweep below only has to replicate log files.
        base.persist_enabled = false;
        ShardedOptions::new(SHARDS, base)
    }

    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    let partitioner;
    {
        let db = ShardedFloDb::open(sharded_opts(Arc::clone(&env))).unwrap();
        partitioner = *db.partitioner();
        let mut batch = WriteBatch::new();
        for b in 0..BATCHES {
            for j in 0..OPS_PER_BATCH {
                batch.put(&bkey(b, j), &b.to_le_bytes());
            }
            db.write(&batch).unwrap();
            batch.clear();
        }
        // Crash without quiescing.
    }

    // Snapshot every file (SHARDING record, per-shard dirs and logs).
    let names = env.list().unwrap();
    let files: Vec<(String, Vec<u8>)> = names
        .into_iter()
        .map(|n| {
            let f = env.open_random(&n).unwrap();
            let bytes = f.read_at(0, f.len() as usize).unwrap();
            (n, bytes)
        })
        .collect();
    let logs: Vec<&(String, Vec<u8>)> =
        files.iter().filter(|(n, _)| n.ends_with(".log")).collect();
    assert_eq!(logs.len(), SHARDS as usize, "one live log per shard");

    // Which sub-batches does each shard hold, and how large is each?
    let routed = |shard: u32, b: u64| -> Vec<[u8; 16]> {
        (0..OPS_PER_BATCH)
            .map(|j| bkey(b, j))
            .filter(|k| partitioner.shard_of(k) == shard)
            .collect()
    };
    for s in 0..SHARDS {
        // Sanity: the sweep exercises each shard against many sub-batches
        // (a batch with no key for a shard writes nothing there, which the
        // prefix check below skips).
        let sub_batches = (0..BATCHES).filter(|&b| !routed(s, b).is_empty()).count();
        assert!(sub_batches >= 20, "shard {s} only saw {sub_batches} sub-batches");
    }

    for (torn_log, torn_bytes) in &logs {
        let torn_shard: u32 = torn_log
            .strip_prefix("shard-")
            .and_then(|r| r.split('/').next())
            .and_then(|d| d.parse().ok())
            .expect("log lives in a shard-NN/ dir");
        let mut cuts: Vec<usize> = (0..torn_bytes.len()).step_by(257).collect();
        cuts.push(torn_bytes.len());
        for cut in cuts {
            let copy: Arc<dyn Env> = Arc::new(MemEnv::new(None));
            for (name, bytes) in &files {
                let data = if name == torn_log { &bytes[..cut] } else { &bytes[..] };
                let mut f = copy.new_writable(name).unwrap();
                f.append(data).unwrap();
                f.finish().unwrap();
            }
            let db = ShardedFloDb::open(sharded_opts(Arc::clone(&copy))).unwrap();
            for s in 0..SHARDS {
                let mut lost_from = None;
                for b in 0..BATCHES {
                    let keys = routed(s, b);
                    if keys.is_empty() {
                        continue; // This batch wrote nothing to shard `s`.
                    }
                    let present = keys.iter().filter(|k| db.get(*k).is_some()).count();
                    assert!(
                        present == 0 || present == keys.len(),
                        "{torn_log} cut {cut}: shard {s} batch {b} recovered \
                         {present}/{} ops — a torn sub-batch",
                        keys.len()
                    );
                    if present == 0 {
                        lost_from.get_or_insert(b);
                    } else {
                        assert_eq!(
                            lost_from, None,
                            "{torn_log} cut {cut}: shard {s} batch {b} survived \
                             although an earlier sub-batch was lost"
                        );
                    }
                }
                if s != torn_shard || cut == torn_bytes.len() {
                    assert_eq!(
                        lost_from, None,
                        "{torn_log} cut {cut}: intact shard {s} lost sub-batches"
                    );
                }
            }
        }
    }
}

#[test]
fn pre_segment_header_logs_recover_on_upgrade() {
    // A store written before WAL segment headers existed left headerless
    // logs (named by sequence number). Opening it with the lifecycle
    // subsystem must recover them as legacy segments, then migrate: the
    // recovered state flushes, the legacy files are pruned, and a fresh
    // headered generation above the legacy numbering takes over.
    use flodb::storage::wal::WalWriter;
    use flodb::storage::Record;
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    {
        let mut w = WalWriter::new(env.new_writable("000117.log").unwrap(), false);
        let records: Vec<Record> = (0..50u64)
            .map(|i| Record::put(key(i).as_slice(), i + 1, i.to_le_bytes().as_slice()))
            .collect();
        w.append_batch(&records).unwrap();
        w.finish().unwrap();
    }
    let db = FloDb::open(wal_opts(Arc::clone(&env), false)).unwrap();
    for i in 0..50u64 {
        assert_eq!(db.get(&key(i)), Some(i.to_le_bytes().to_vec()), "key {i}");
    }
    db.put(&key(100), b"post-upgrade").unwrap();
    drop(db);
    assert!(!env.exists("000117.log"), "legacy log must be pruned");
    let db = FloDb::open(wal_opts(env, false)).unwrap();
    assert_eq!(db.get(&key(100)).as_deref(), Some(b"post-upgrade".as_slice()));
    assert_eq!(db.get(&key(7)), Some(7u64.to_le_bytes().to_vec()));
}

#[test]
fn wal_disabled_loses_the_memory_component() {
    // Without a WAL (the benchmark configuration, matching the paper's
    // setup), a crash loses whatever was still in memory.
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    let mut opts = FloDbOptions::small_for_tests();
    opts.env = Arc::clone(&env);
    {
        let db = FloDb::open(opts.clone()).unwrap();
        db.put(b"only-in-memory", b"gone").unwrap();
    }
    let db = FloDb::open(opts).unwrap();
    assert_eq!(db.get(b"only-in-memory"), None, "unlogged write must vanish");
}
