//! Behavioural contrasts between FloDB and the baselines — the mechanisms
//! §2 and §5 attribute each system's performance to must actually be
//! present in our reimplementations.

use std::sync::Arc;

use flodb::baselines::{
    BaselineOptions, HyperLevelDbStore, LevelDbStore, MemtableKind, RocksDbClsmStore,
    RocksDbStore,
};
use flodb::{FloDb, FloDbOptions, KvStore};

fn key(n: u64) -> [u8; 8] {
    n.to_be_bytes()
}

/// The Figure 16 mechanism: multi-versioned baselines fill their memory
/// component with duplicate versions of a hot key and must flush; FloDB's
/// in-place updates never do.
#[test]
fn multi_versioning_fills_memory_in_place_updates_do_not() {
    let hammer = |store: &dyn KvStore| {
        for round in 0..200_000u64 {
            store.put(b"hot-key", &round.to_le_bytes()).unwrap();
        }
        store.quiesce();
        store.stats().persists
    };

    let flodb = FloDb::open(FloDbOptions::small_for_tests()).unwrap();
    let flodb_flushes = hammer(&flodb);
    assert_eq!(flodb_flushes, 0, "in-place updates must not trigger flushes");

    let rocks = RocksDbStore::open(BaselineOptions::small_for_tests());
    let rocks_flushes = hammer(&rocks);
    assert!(
        rocks_flushes > 0,
        "multi-versioning must fill the memtable and flush"
    );
}

/// Every baseline still returns the latest version after overwrites that
/// cross a flush boundary.
#[test]
fn baselines_keep_latest_version_across_flushes() {
    let stores: Vec<Arc<dyn KvStore>> = vec![
        Arc::new(LevelDbStore::open(BaselineOptions::small_for_tests())),
        Arc::new(HyperLevelDbStore::open(BaselineOptions::small_for_tests())),
        Arc::new(RocksDbStore::open(BaselineOptions::small_for_tests())),
        Arc::new(RocksDbClsmStore::open(BaselineOptions::small_for_tests())),
    ];
    for store in stores {
        // Enough distinct versions to force several flushes.
        for round in 0..5000u64 {
            store.put(&key(round % 16), &round.to_le_bytes()).unwrap();
        }
        store.quiesce();
        for k in 0..16u64 {
            // Last round that touched key k: largest r < 5000 with
            // r % 16 == k.
            let want = if k <= (4999 % 16) { 4992 + k } else { 4976 + k };
            assert_eq!(
                store.get(&key(k)),
                Some(want.to_le_bytes().to_vec()),
                "{} lost an overwrite",
                store.name()
            );
        }
    }
}

/// RocksDB's hash-table memtable (Figures 3-4): correct results including
/// ordered scans, which require the sort-before-flush step.
#[test]
fn rocksdb_hash_memtable_scans_are_sorted() {
    let mut opts = BaselineOptions::small_for_tests();
    opts.memtable = MemtableKind::HashTable;
    let store = RocksDbStore::open(opts);
    // Insert in adversarial (descending) order.
    for i in (0..500u64).rev() {
        store.put(&key(i), &i.to_le_bytes()).unwrap();
    }
    let out = store.scan(&key(100), &key(199));
    assert_eq!(out.len(), 100);
    for (i, (k, v)) in out.iter().enumerate() {
        let expect = 100 + i as u64;
        assert_eq!(k.as_slice(), key(expect));
        assert_eq!(v.as_slice(), expect.to_le_bytes());
    }
    store.quiesce();
    // After the sorted flush, disk-resident data still scans in order.
    let out = store.scan(&key(0), &key(499));
    assert_eq!(out.len(), 500);
    for w in out.windows(2) {
        assert!(w[0].0 < w[1].0);
    }
}

/// Deletes must shadow older versions in all baselines (tombstones are
/// versions too).
#[test]
fn baseline_tombstones_shadow_older_versions() {
    let stores: Vec<Arc<dyn KvStore>> = vec![
        Arc::new(LevelDbStore::open(BaselineOptions::small_for_tests())),
        Arc::new(HyperLevelDbStore::open(BaselineOptions::small_for_tests())),
        Arc::new(RocksDbStore::open(BaselineOptions::small_for_tests())),
        Arc::new(RocksDbClsmStore::open(BaselineOptions::small_for_tests())),
    ];
    for store in stores {
        store.put(b"k", b"v1").unwrap();
        store.quiesce(); // v1 on disk.
        store.put(b"k", b"v2").unwrap();
        store.delete(b"k").unwrap();
        assert_eq!(store.get(b"k"), None, "{}", store.name());
        store.quiesce();
        assert_eq!(store.get(b"k"), None, "{} after flush", store.name());
        // Scan agrees with get.
        assert!(
            store.scan(b"j", b"l").is_empty(),
            "{} scan resurrected a tombstone",
            store.name()
        );
    }
}

/// Concurrent writers are safe on every baseline (LevelDB serializes them
/// through the write queue; the others take finer paths) — same data in,
/// same data out.
#[test]
fn baseline_concurrent_writers_do_not_lose_writes() {
    let stores: Vec<Arc<dyn KvStore>> = vec![
        Arc::new(LevelDbStore::open(BaselineOptions::small_for_tests())),
        Arc::new(HyperLevelDbStore::open(BaselineOptions::small_for_tests())),
        Arc::new(RocksDbStore::open(BaselineOptions::small_for_tests())),
        Arc::new(RocksDbClsmStore::open(BaselineOptions::small_for_tests())),
    ];
    for store in stores {
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let k = t * 100_000 + i;
                    store.put(&key(k), &k.to_le_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        store.quiesce();
        for t in 0..4u64 {
            for i in (0..1000u64).step_by(97) {
                let k = t * 100_000 + i;
                assert_eq!(
                    store.get(&key(k)),
                    Some(k.to_le_bytes().to_vec()),
                    "{} lost key {k}",
                    store.name()
                );
            }
        }
    }
}

/// FloDB's Membuffer fast path actually absorbs most uniform writes,
/// while the baselines report zero fast-level writes — the counter the
/// Figure 17 boxes are built from.
#[test]
fn fast_level_counter_distinguishes_flodb() {
    let flodb = FloDb::open(FloDbOptions::small_for_tests()).unwrap();
    for i in 0..5000u64 {
        // Scattered keys spread across partitions.
        flodb.put(&key(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)), b"v").unwrap();
    }
    let s = flodb.stats();
    // The test Membuffer is tiny (~64 KiB) and the writer outruns the
    // single drain thread, so demand a substantial share rather than a
    // majority; the baselines report exactly zero.
    assert!(
        s.fast_level_writes * 4 > s.puts,
        "expected a substantial fast-path share: {}/{}",
        s.fast_level_writes,
        s.puts
    );

    let rocks = RocksDbStore::open(BaselineOptions::small_for_tests());
    for i in 0..1000u64 {
        rocks.put(&key(i), b"v").unwrap();
    }
    assert_eq!(rocks.stats().fast_level_writes, 0);
}
