//! Mutation regression tests for the model checker itself: re-introduce
//! each of PR 5's two freeze races (via the `flodb_model_mutation` hooks
//! in `crates/core/src/{view,drain}.rs`) and assert flodb-check *finds*
//! them. A checker that stops finding known-lost-write races has
//! bit-rotted; this suite turns that into a red test.
//!
//! ```sh
//! RUSTFLAGS="--cfg flodb_model --cfg flodb_model_mutation" \
//!     cargo test --test model_mutation
//! ```

#![cfg(all(flodb_model, flodb_model_mutation))]

mod model_support;

use flodb_check::{Builder, FailureKind};
use model_support as scenarios;

fn assert_lost_write(failure: &flodb_check::Failure, needle: &str) {
    match &failure.kind {
        FailureKind::Panic(msg) => assert!(
            msg.contains(needle),
            "expected the lost-write assertion ({needle:?}), got: {msg}"
        ),
        other => panic!("expected a lost-write panic, got {other:?}"),
    }
}

#[test]
fn checker_finds_the_drain_gate_race() {
    // PR 5 race #1: helpers claiming buckets before the freeze's grace
    // period has elapsed (drain_ready mutated to always-open). Uses the
    // distilled gate scenario — see `gate_claim_body`'s docs for why the
    // full freeze body's window sits beyond a CI-sized search budget.
    let failure = Builder::dfs(2)
        .iterations(3000)
        .check(scenarios::gate_claim_body)
        .expect_err("the gate mutation must lose an acknowledged write");
    assert_lost_write(&failure, "dropped frozen Membuffer");

    // The printed schedule is replayable: the exact failing interleaving
    // reproduces on demand.
    let replayed = Builder::replay(failure.schedule.clone())
        .check(scenarios::gate_claim_body)
        .expect_err("replaying the failing schedule must fail again");
    assert_lost_write(&replayed, "dropped frozen Membuffer");
}

#[test]
fn checker_finds_the_stale_memtable_race() {
    // PR 5 race #2: resolving the drain's target Memtable once, outside
    // the read-side critical section, races the persist switch.
    let failure = Builder::dfs(2)
        .iterations(3000)
        .check(scenarios::persist_switch_body)
        .expect_err("the stale-resolve mutation must lose an acknowledged write");
    assert_lost_write(&failure, "missed both the flush");

    let replayed = Builder::replay(failure.schedule.clone())
        .check(scenarios::persist_switch_body)
        .expect_err("replaying the failing schedule must fail again");
    assert_lost_write(&replayed, "missed both the flush");
}

#[test]
fn checker_finds_the_broken_router_split() {
    // PR 7 mutation: a sub-batch submitted outside the owning shard's
    // committer critical section lands one record at a time, so a
    // concurrent writer's records can interleave mid-sub-batch and tear
    // the frame the recovery contract stands on.
    let failure = Builder::dfs(2)
        .iterations(3000)
        .check(scenarios::router_split_broken_body)
        .expect_err("the split mutation must tear a sub-batch");
    assert_lost_write(&failure, "torn across the shard's log");

    let replayed = Builder::replay(failure.schedule.clone())
        .check(scenarios::router_split_broken_body)
        .expect_err("replaying the failing schedule must fail again");
    assert_lost_write(&replayed, "torn across the shard's log");
}

#[test]
fn finding_is_deterministic() {
    // Two independent searches over the mutated code must fail on the
    // same iteration with the same schedule — no wall-clock, no ASLR, no
    // OS-scheduler nondeterminism leaks into the search.
    let a = Builder::dfs(2)
        .iterations(3000)
        .check(scenarios::persist_switch_body)
        .expect_err("mutation must be found");
    let b = Builder::dfs(2)
        .iterations(3000)
        .check(scenarios::persist_switch_body)
        .expect_err("mutation must be found");
    assert_eq!(a.iteration, b.iteration);
    assert_eq!(a.schedule, b.schedule);
}
