//! End-to-end integration tests: data flowing through every level of the
//! FloDB hierarchy (Membuffer → Memtable → immutable Memtable → disk) and
//! back out through gets and scans.

use std::sync::Arc;

use flodb::{FloDb, FloDbOptions, KvStore};

fn key(n: u64) -> [u8; 8] {
    n.to_be_bytes()
}

fn small_db() -> FloDb {
    FloDb::open(FloDbOptions::small_for_tests()).unwrap()
}

#[test]
fn thousand_entries_survive_flush_and_compaction() {
    let db = small_db();
    for i in 0..1000u64 {
        db.put(&key(i), format!("value-{i}").as_bytes()).unwrap();
    }
    db.flush_all();
    let disk = db.disk_stats();
    assert!(disk.flushes >= 1, "small memory component must have flushed");
    for i in 0..1000u64 {
        assert_eq!(
            db.get(&key(i)),
            Some(format!("value-{i}").into_bytes()),
            "key {i} lost"
        );
    }
}

#[test]
fn freshest_value_wins_across_levels() {
    let db = small_db();
    // Generation 1 goes all the way to disk.
    for i in 0..100u64 {
        db.put(&key(i), b"gen1").unwrap();
    }
    db.flush_all();
    // Generation 2 rests in the Memtable (drained but not flushed).
    for i in 0..50u64 {
        db.put(&key(i), b"gen2").unwrap();
    }
    db.quiesce();
    // Generation 3 sits in the Membuffer for a subset.
    for i in 0..10u64 {
        db.put(&key(i), b"gen3").unwrap();
    }
    for i in 0..100u64 {
        let expect: &[u8] = if i < 10 {
            b"gen3"
        } else if i < 50 {
            b"gen2"
        } else {
            b"gen1"
        };
        assert_eq!(db.get(&key(i)).as_deref(), Some(expect), "key {i}");
    }
    // A scan agrees with the gets.
    let all = db.scan(&key(0), &key(99));
    assert_eq!(all.len(), 100);
    for (i, (k, v)) in all.iter().enumerate() {
        assert_eq!(k.as_slice(), key(i as u64));
        let expect: &[u8] = if i < 10 {
            b"gen3"
        } else if i < 50 {
            b"gen2"
        } else {
            b"gen1"
        };
        assert_eq!(v.as_slice(), expect, "key {i}");
    }
}

#[test]
fn tombstones_shadow_every_level() {
    let db = small_db();
    for i in 0..200u64 {
        db.put(&key(i), b"v").unwrap();
    }
    db.flush_all();
    // Delete every third key; leave the tombstones at different depths.
    for i in (0..200u64).step_by(3) {
        db.delete(&key(i)).unwrap();
    }
    // Some tombstones stay in memory, some go to disk.
    db.quiesce();
    for i in 0..200u64 {
        let got = db.get(&key(i));
        if i % 3 == 0 {
            assert_eq!(got, None, "key {i} should be deleted");
        } else {
            assert_eq!(got.as_deref(), Some(b"v".as_slice()), "key {i}");
        }
    }
    let survivors = db.scan(&key(0), &key(199));
    assert_eq!(survivors.len(), 200 - 200usize.div_ceil(3));
    // Compaction at the bottom drops the tombstones entirely; results must
    // not change.
    db.flush_all();
    let survivors = db.scan(&key(0), &key(199));
    assert_eq!(survivors.len(), 200 - 200usize.div_ceil(3));
}

#[test]
fn reinsert_after_delete_resurrects_key() {
    let db = small_db();
    db.put(b"phoenix", b"v1").unwrap();
    db.flush_all();
    db.delete(b"phoenix").unwrap();
    db.flush_all();
    assert_eq!(db.get(b"phoenix"), None);
    db.put(b"phoenix", b"v2").unwrap();
    assert_eq!(db.get(b"phoenix").as_deref(), Some(b"v2".as_slice()));
    db.flush_all();
    assert_eq!(db.get(b"phoenix").as_deref(), Some(b"v2".as_slice()));
}

#[test]
fn scan_bounds_are_inclusive_and_precise() {
    let db = small_db();
    for i in [10u64, 20, 30, 40, 50] {
        db.put(&key(i), &i.to_le_bytes()).unwrap();
    }
    db.flush_all();
    // Exact hits on both bounds.
    let out = db.scan(&key(20), &key(40));
    let got: Vec<u64> = out
        .iter()
        .map(|(k, _)| u64::from_be_bytes(k.as_slice().try_into().unwrap()))
        .collect();
    assert_eq!(got, vec![20, 30, 40]);
    // Bounds between keys.
    let out = db.scan(&key(11), &key(39));
    assert_eq!(out.len(), 2);
    // Degenerate range: low == high == existing key.
    let out = db.scan(&key(30), &key(30));
    assert_eq!(out.len(), 1);
    // Empty range: low > high.
    let out = db.scan(&key(40), &key(20));
    assert!(out.is_empty());
}

#[test]
fn values_of_many_sizes_round_trip() {
    let db = small_db();
    // Empty values, 1-byte, and values spanning block-size boundaries.
    let sizes = [0usize, 1, 7, 255, 256, 257, 1024, 4096, 65536];
    for (i, &sz) in sizes.iter().enumerate() {
        let v: Vec<u8> = (0..sz).map(|b| (b % 251) as u8).collect();
        db.put(&key(i as u64), &v).unwrap();
    }
    db.flush_all();
    for (i, &sz) in sizes.iter().enumerate() {
        let v = db.get(&key(i as u64)).unwrap();
        assert_eq!(v.len(), sz);
        assert!(v.iter().enumerate().all(|(b, &x)| x == (b % 251) as u8));
    }
}

#[test]
fn binary_keys_with_zero_and_ff_bytes() {
    let db = small_db();
    let keys: Vec<Vec<u8>> = vec![
        vec![],
        vec![0x00],
        vec![0x00, 0x00],
        vec![0x00, 0x01],
        vec![0x7F],
        vec![0xFF],
        vec![0xFF, 0xFF],
    ];
    for (i, k) in keys.iter().enumerate() {
        db.put(k, &[i as u8]).unwrap();
    }
    db.flush_all();
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(db.get(k).as_deref(), Some([i as u8].as_slice()), "key {k:?}");
    }
    // Scan over the whole byte-string space keeps lexicographic order.
    let all = db.scan(&[], &[0xFFu8, 0xFF, 0xFF]);
    assert_eq!(all.len(), keys.len());
    for w in all.windows(2) {
        assert!(w[0].0 < w[1].0, "lexicographic order violated");
    }
}

#[test]
fn memory_usage_falls_after_flush_all() {
    let db = small_db();
    for i in 0..2000u64 {
        db.put(&key(i), &[0u8; 32]).unwrap();
    }
    let before = db.memory_usage();
    assert!(before > 0);
    db.flush_all();
    let after = db.memory_usage();
    assert_eq!(after, 0, "flush_all must empty the memory component");
}

#[test]
fn overwrite_heavy_workload_is_space_bounded() {
    // In-place updates (§3.2): hammering one key must not fill the memory
    // component or force flushes.
    let db = small_db();
    for round in 0..50_000u64 {
        db.put(b"hot", &round.to_le_bytes()).unwrap();
    }
    db.quiesce();
    assert_eq!(
        db.get(b"hot").as_deref(),
        Some(49_999u64.to_le_bytes().as_slice())
    );
    assert_eq!(
        db.disk_stats().flushes,
        0,
        "in-place updates must not consume memory"
    );
}

#[test]
fn interleaved_put_delete_scan_cycles() {
    let db = small_db();
    for cycle in 0..10u64 {
        for i in 0..100u64 {
            if (i + cycle) % 2 == 0 {
                db.put(&key(i), &cycle.to_le_bytes()).unwrap();
            } else {
                db.delete(&key(i)).unwrap();
            }
        }
        let live = db.scan(&key(0), &key(99));
        assert_eq!(live.len(), 50, "cycle {cycle}");
        for (k, v) in live {
            let i = u64::from_be_bytes(k.as_slice().try_into().unwrap());
            assert_eq!((i + cycle) % 2, 0);
            assert_eq!(v, cycle.to_le_bytes());
        }
    }
}

#[test]
fn get_of_unwritten_keys_is_none_at_every_depth() {
    let db = small_db();
    assert_eq!(db.get(b"nothing"), None);
    db.put(b"a", b"1").unwrap();
    assert_eq!(db.get(b"nothing"), None);
    db.flush_all();
    assert_eq!(db.get(b"nothing"), None, "bloom filter must not lie");
}

#[test]
fn shared_reference_use_from_many_threads() {
    // The store is Sync: hammer it through an Arc from many threads with
    // disjoint key ranges and verify.
    let db = Arc::new(small_db());
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let base = t * 10_000;
            for i in 0..2000u64 {
                db.put(&key(base + i), &(base + i).to_le_bytes()).unwrap();
            }
            for i in 0..2000u64 {
                assert_eq!(
                    db.get(&key(base + i)),
                    Some((base + i).to_le_bytes().to_vec())
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = db.stats();
    assert_eq!(stats.puts, 8 * 2000);
}
