//! Integration tests of the measurement harness itself: the workload
//! driver's reports must be internally consistent and its knobs must do
//! what the evaluation section assumes they do.

use std::sync::Arc;
use std::time::Duration;

use flodb::workloads::init::{fill_random, fill_sequential};
use flodb::workloads::{
    build_flodb_store, run_workload, KeyDistribution, OperationMix, WorkloadConfig,
};
use flodb::{FloDb, FloDbOptions, KvStore};

fn store() -> Arc<dyn KvStore> {
    Arc::new(FloDb::open(FloDbOptions::small_for_tests()).unwrap())
}

#[test]
fn fixed_op_count_runs_exactly_that_many() {
    let store = store();
    let mut cfg = WorkloadConfig::new(
        3,
        OperationMix::mixed_balanced(),
        KeyDistribution::Uniform { n: 10_000 },
    );
    cfg.ops_per_thread = Some(500);
    let report = run_workload(&store, &cfg);
    assert_eq!(report.total_ops, 3 * 500);
    assert_eq!(report.total_ops, report.reads + report.writes + report.scans);
}

#[test]
fn timed_run_reports_positive_throughput() {
    let store = store();
    let mut cfg = WorkloadConfig::new(
        2,
        OperationMix::write_only(),
        KeyDistribution::Uniform { n: 10_000 },
    );
    cfg.duration = Duration::from_millis(300);
    let report = run_workload(&store, &cfg);
    assert!(report.total_ops > 0);
    assert!(report.ops_per_sec() > 0.0);
    assert!(report.elapsed >= Duration::from_millis(300));
    // Write-only: no reads, no scans (§5.2 — 50% insert / 50% delete).
    assert_eq!(report.reads, 0);
    assert_eq!(report.scans, 0);
    assert_eq!(report.writes, report.total_ops);
}

#[test]
fn read_only_mix_never_writes() {
    let store = store();
    fill_random(&*store, 1000, 64);
    let mut cfg = WorkloadConfig::new(
        2,
        OperationMix::read_only(),
        KeyDistribution::Uniform { n: 1000 },
    );
    cfg.ops_per_thread = Some(300);
    let report = run_workload(&store, &cfg);
    assert_eq!(report.writes, 0);
    assert_eq!(report.scans, 0);
    let stats = store.stats();
    // The fill covers half the dataset (§5.2); nothing else may write.
    assert_eq!(stats.puts + stats.deletes, 500, "only the fill wrote");
}

#[test]
fn single_writer_mode_isolates_writes_to_thread_zero() {
    let store = store();
    fill_random(&*store, 1000, 64);
    let before = store.stats();
    let mut cfg = WorkloadConfig::new(
        4,
        OperationMix::read_only(), // Overridden per-thread by single_writer.
        KeyDistribution::Uniform { n: 1000 },
    );
    cfg.single_writer = true;
    cfg.ops_per_thread = Some(200);
    let report = run_workload(&store, &cfg);
    assert_eq!(report.writes, 200, "exactly one writer thread");
    assert_eq!(report.reads, 3 * 200);
    let after = store.stats();
    assert_eq!(after.puts - before.puts, 200);
}

#[test]
fn scan_mix_counts_keys_not_ops() {
    let store = store();
    fill_sequential(&*store, 5_000, 64);
    store.quiesce();
    let mut cfg = WorkloadConfig::new(
        2,
        OperationMix::scan_write(0.5),
        KeyDistribution::Uniform { n: 5_000 },
    );
    cfg.ops_per_thread = Some(200);
    cfg.scan_len = 100;
    let report = run_workload(&store, &cfg);
    assert!(report.scans > 0);
    // Key throughput counts every key a scan returned (§5.2), so it must
    // exceed operation count substantially in a scan-heavy mix.
    assert!(
        report.keys_accessed > report.total_ops,
        "keys {} vs ops {}",
        report.keys_accessed,
        report.total_ops
    );
}

#[test]
fn shards_knob_runs_the_mixed_cell_against_a_sharded_store() {
    // The `shards` knob turns into a ShardedFloDb via build_flodb_store;
    // the driver itself stays store-agnostic. One mixed cell at N=4: the
    // run completes, reports are consistent, and every shard took writes.
    let mut cfg = WorkloadConfig::new(
        3,
        OperationMix::mixed_balanced(),
        KeyDistribution::Uniform { n: 10_000 },
    );
    cfg.shards = 4;
    cfg.ops_per_thread = Some(500);
    let store = build_flodb_store(cfg.shards, FloDbOptions::small_for_tests()).unwrap();
    assert_eq!(store.name(), "ShardedFloDB");
    fill_random(&*store, 10_000, 64);
    let report = run_workload(&store, &cfg);
    assert_eq!(report.total_ops, 3 * 500);
    assert_eq!(report.total_ops, report.reads + report.writes + report.scans);
    let stats = store.stats();
    assert!(
        stats.puts + stats.deletes >= 5_000,
        "fill + mixed writes must register in aggregated stats"
    );
    // At N=1 the same knob yields a plain store.
    let plain = build_flodb_store(1, FloDbOptions::small_for_tests()).unwrap();
    assert_eq!(plain.name(), "FloDB");
}

#[test]
fn latency_histograms_populate_when_enabled() {
    let store = store();
    let mut cfg = WorkloadConfig::new(
        2,
        OperationMix::mixed_balanced(),
        KeyDistribution::Uniform { n: 1000 },
    );
    cfg.ops_per_thread = Some(400);
    cfg.measure_latency = true;
    let report = run_workload(&store, &cfg);
    assert!(report.read_latency.count() > 0);
    assert!(report.write_latency.count() > 0);
    let median = report.write_latency.percentile_ns(50.0);
    let p99 = report.write_latency.percentile_ns(99.0);
    assert!(median > 0, "median latency must be recorded");
    assert!(p99 >= median, "p99 cannot undercut the median");
}

#[test]
fn skewed_distribution_concentrates_accesses() {
    // The paper's skew: 98% of operations target 2% of the keys (§5.4).
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let dist = KeyDistribution::paper_skew(100_000);
    let mut rng = SmallRng::seed_from_u64(7);
    // Hot keys are strided across the space: multiples of n / hot_n.
    let stride = 100_000 / 2_000;
    let mut hot = 0u64;
    const SAMPLES: u64 = 100_000;
    for _ in 0..SAMPLES {
        if dist.sample(&mut rng).is_multiple_of(stride) {
            hot += 1;
        }
    }
    let ratio = hot as f64 / SAMPLES as f64;
    assert!(
        (0.96..=1.0).contains(&ratio),
        "expected ~98% hot accesses, got {ratio:.3}"
    );
}

#[test]
fn deterministic_given_a_seed() {
    // Two runs with the same seed and fixed op counts do identical work.
    let run = |seed: u64| {
        let store = store();
        let mut cfg = WorkloadConfig::new(
            2,
            OperationMix::write_only(),
            KeyDistribution::Uniform { n: 1000 },
        );
        cfg.seed = seed;
        cfg.ops_per_thread = Some(300);
        run_workload(&store, &cfg);
        let s = store.stats();
        (s.puts, s.deletes)
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43), "different seeds must differ");
}

#[test]
fn fill_helpers_report_entries_written() {
    let store = store();
    // The fill covers half the dataset (§5.2): even keys only.
    let n = fill_sequential(&*store, 1234, 32);
    assert_eq!(n, 617);
    store.quiesce();
    assert!(store.get(&KeyDistribution::encode(0)).is_some());
    assert!(store.get(&KeyDistribution::encode(1232)).is_some());
    assert!(store.get(&KeyDistribution::encode(1233)).is_none(), "odd keys unfilled");
    assert!(store.get(&KeyDistribution::encode(1234)).is_none(), "out of range");
}
