//! Property-based equivalence tests for the sharded router: any
//! interleaved sequence of puts, deletes, batches and scans observed
//! through a `ShardedFloDb` (at several shard counts) matches a single
//! unsharded FloDB bit-for-bit, and the partitioner is a total, stable,
//! insertion-order-independent function of the key.

use std::ops::ControlFlow;
use std::sync::Arc;

use flodb::storage::{Env, MemEnv};
use flodb::{
    FloDb, FloDbOptions, KvStore, Partitioner, ShardedFloDb, ShardedOptions, WalMode, WriteBatch,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Put(u8, u8),
    Delete(u8),
    /// An atomic batch of puts (even keys) and deletes (odd keys).
    Batch(Vec<(u8, Option<u8>)>),
    /// Compare a full scan over `[low, high]` between the two stores.
    Scan(u8, u8),
    /// Drop both stores and reopen (crash + recovery on both sides).
    Crash,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        5 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Step::Put(k, v)),
        2 => any::<u8>().prop_map(Step::Delete),
        2 => proptest::collection::vec((any::<u8>(), proptest::option::of(any::<u8>())), 1..12)
            .prop_map(Step::Batch),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::Scan(a.min(b), a.max(b))),
        1 => Just(Step::Crash),
    ]
}

fn key(k: u8) -> [u8; 8] {
    (u64::from(k) << 24 | 0xC0FFEE).to_be_bytes()
}

fn collect(db: &dyn KvStore, low: u8, high: u8) -> Vec<(Vec<u8>, Vec<u8>)> {
    db.scan(&key(low), &key(high))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    #[test]
    fn sharded_store_is_observationally_equal_to_unsharded(
        shards in prop_oneof![Just(1u32), Just(2), Just(4), Just(7)],
        steps in proptest::collection::vec(step_strategy(), 1..60),
    ) {
        let sharded_env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
        let plain_env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
        let base = |env: &Arc<dyn Env>| {
            let mut o = FloDbOptions::small_for_tests();
            o.env = Arc::clone(env);
            o.wal = WalMode::Enabled { sync: false };
            o
        };
        let open_sharded =
            || ShardedFloDb::open(ShardedOptions::new(shards, base(&sharded_env))).unwrap();
        let open_plain = || FloDb::open(base(&plain_env)).unwrap();
        let mut sharded = Some(open_sharded());
        let mut plain = Some(open_plain());
        for step in &steps {
            let (s, p) = (sharded.as_ref().unwrap(), plain.as_ref().unwrap());
            match step {
                Step::Put(k, v) => {
                    s.put(&key(*k), &[*v]).unwrap();
                    p.put(&key(*k), &[*v]).unwrap();
                }
                Step::Delete(k) => {
                    s.delete(&key(*k)).unwrap();
                    p.delete(&key(*k)).unwrap();
                }
                Step::Batch(ops) => {
                    let mut batch = WriteBatch::new();
                    for (k, v) in ops {
                        match v {
                            Some(v) => batch.put(&key(*k), &[*v]),
                            None => batch.delete(&key(*k)),
                        };
                    }
                    s.write(&batch).unwrap();
                    p.write(&batch).unwrap();
                }
                Step::Scan(low, high) => {
                    prop_assert_eq!(
                        collect(s, *low, *high),
                        collect(p, *low, *high),
                        "scan [{}, {}] diverged", low, high
                    );
                }
                Step::Crash => {
                    drop(sharded.take());
                    drop(plain.take());
                    sharded = Some(open_sharded());
                    plain = Some(open_plain());
                }
            }
        }
        // Final crash on both sides, then compare every observation.
        drop(sharded.take());
        drop(plain.take());
        let s = open_sharded();
        let p = open_plain();
        for k in 0..=255u8 {
            prop_assert_eq!(s.get(&key(k)), p.get(&key(k)), "get({}) diverged", k);
        }
        prop_assert_eq!(collect(&s, 0, 255), collect(&p, 0, 255));
        // Early termination sees the same prefix through the k-way merge.
        let mut s_prefix = Vec::new();
        s.scan_with(&key(0), &key(255), &mut |k, v| {
            s_prefix.push((k.to_vec(), v.to_vec()));
            if s_prefix.len() == 3 { ControlFlow::Break(()) } else { ControlFlow::Continue(()) }
        });
        let full = collect(&p, 0, 255);
        prop_assert_eq!(&s_prefix[..], &full[..s_prefix.len()]);
    }

    #[test]
    fn partitioner_is_total_stable_and_order_independent(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 1..64),
        shards in 1u32..9,
        seed in any::<u64>(),
    ) {
        let part = Partitioner::new(shards, seed);
        let forward: Vec<u32> = keys.iter().map(|k| part.shard_of(k)).collect();
        // Total: every key lands in range.
        prop_assert!(forward.iter().all(|&s| s < shards));
        // Stable and insertion-order independent: a fresh partitioner
        // visiting the keys in reverse assigns identical shards.
        let again = Partitioner::new(shards, seed);
        let backward: Vec<u32> = keys.iter().rev().map(|k| again.shard_of(k)).collect();
        let backward: Vec<u32> = backward.into_iter().rev().collect();
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn partitioner_is_stable_across_reopen(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..16), 1..32),
        shards in prop_oneof![Just(2u32), Just(4), Just(7)],
    ) {
        // Routing must survive a reopen: the shard that wrote a key is the
        // shard that serves it, or reads silently miss. Verified end to
        // end — write through one handle, crash, read through another.
        let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
        let opts = || {
            let mut o = FloDbOptions::small_for_tests();
            o.env = Arc::clone(&env);
            o.wal = WalMode::Enabled { sync: false };
            ShardedOptions::new(shards, o)
        };
        let before;
        {
            let db = ShardedFloDb::open(opts()).unwrap();
            before = *db.partitioner();
            for k in &keys {
                db.put(k, b"routed").unwrap();
            }
        }
        let db = ShardedFloDb::open(opts()).unwrap();
        prop_assert_eq!(*db.partitioner(), before);
        for k in &keys {
            prop_assert_eq!(db.get(k).as_deref(), Some(b"routed".as_slice()));
        }
    }
}
