//! WAL lifecycle integration tests: under sustained write traffic the
//! on-disk log must stay bounded (segments rotate and retire as
//! checkpoints cover them), while a kill at *any* point of the live tail
//! still recovers a whole-batch prefix of the acknowledged writes — the
//! retire-too-early failure mode (deleting a segment whose records were
//! not yet persisted) would break exactly this.

use std::sync::Arc;

use flodb::storage::{Env, FaultEnv, FaultKind, FaultPlan, MemEnv};
use flodb::{FloDb, FloDbOptions, KvStore, WalMode, WriteBatch};

const SEGMENT_MAX: usize = 16 * 1024;
const BATCH_OPS: u64 = 4;

fn key(n: u64) -> [u8; 8] {
    n.to_be_bytes()
}

fn opts(env: Arc<dyn Env>) -> FloDbOptions {
    let mut opts = FloDbOptions::small_for_tests();
    opts.env = env;
    opts.wal = WalMode::Enabled { sync: false };
    opts.wal_segment_max_bytes = SEGMENT_MAX;
    opts
}

fn wal_files(env: &dyn Env) -> Vec<(String, u64)> {
    env.list()
        .unwrap()
        .into_iter()
        .filter(|n| n.ends_with(".log"))
        .map(|n| {
            let len = env.open_random(&n).unwrap().len();
            (n, len)
        })
        .collect()
}

/// Copies every file of `src` into a fresh env, truncating `truncate` to
/// its first `keep` bytes — a crash image with the live tail torn there.
fn crash_image(src: &dyn Env, truncate: &str, keep: usize) -> Arc<dyn Env> {
    let dst = MemEnv::new(None);
    for name in src.list().unwrap() {
        let file = src.open_random(&name).unwrap();
        let len = if name == truncate {
            keep.min(file.len() as usize)
        } else {
            file.len() as usize
        };
        let data = file.read_at(0, len).unwrap();
        let mut out = dst.new_writable(&name).unwrap();
        out.append(&data).unwrap();
        out.finish().unwrap();
    }
    Arc::new(dst)
}

/// Drives batches through `db` until at least `rotations` segment rolls
/// happened; returns the number of keys written (all acknowledged).
fn write_until_rotations(db: &FloDb, rotations: u64) -> u64 {
    let mut batch = WriteBatch::new();
    let mut next = 0u64;
    // ~60 bytes per record: a 16 KiB segment rolls every ~270 records, so
    // the cap is far above what 5 rotations need.
    for _ in 0..40_000 {
        batch.clear();
        for _ in 0..BATCH_OPS {
            batch.put(&key(next), &[next as u8; 40]);
            next += 1;
        }
        db.write(&batch).unwrap();
        if db.stats().wal_rotations >= rotations {
            return next;
        }
    }
    panic!(
        "no {rotations} rotations after {next} keys (rotations: {})",
        db.stats().wal_rotations
    );
}

#[test]
fn sustained_writes_keep_the_log_bounded() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    let db = FloDb::open(opts(Arc::clone(&env))).unwrap();
    let total = write_until_rotations(&db, 5);
    db.quiesce();

    let stats = db.stats();
    assert!(stats.wal_rotations >= 5);
    assert!(
        stats.wal_retired_bytes >= 5 * SEGMENT_MAX as u64,
        "five sealed segments must have retired, got {} bytes",
        stats.wal_retired_bytes
    );
    assert_eq!(
        stats.wal_generations, 1,
        "after quiesce only the active segment remains"
    );

    // The bounded-log criterion: total on-disk WAL bytes stay within
    // 2 × the segment threshold, no matter how much was written.
    let files = wal_files(env.as_ref());
    assert_eq!(files.len(), 1, "live segments: {files:?}");
    let on_disk: u64 = files.iter().map(|(_, len)| len).sum();
    assert!(
        on_disk <= 2 * SEGMENT_MAX as u64,
        "WAL grew unboundedly: {on_disk} bytes after {total} keys"
    );
    assert!(stats.wal_active_bytes <= 2 * SEGMENT_MAX as u64);

    // Retirement must not have cost a single acknowledged write.
    for n in 0..total {
        assert_eq!(db.get(&key(n)).as_deref(), Some(&[n as u8; 40][..]), "key {n}");
    }
}

#[test]
fn kill_at_any_offset_recovers_an_acked_prefix_across_retirement() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    let total = {
        let db = FloDb::open(opts(Arc::clone(&env))).unwrap();
        let mut next = write_until_rotations(&db, 5);
        db.quiesce();
        // A tail the last retirement checkpoint provably does not cover:
        // these batches live only in the active WAL segment, so the
        // shortest crash image below must genuinely lose them (keeps the
        // sweep's tearing guard non-vacuous).
        let mut batch = WriteBatch::new();
        for _ in 0..8 {
            batch.clear();
            for _ in 0..BATCH_OPS {
                batch.put(&key(next), &[next as u8; 40]);
                next += 1;
            }
            db.write(&batch).unwrap();
        }
        next
        // Handle drop; the env snapshot below is the crash state.
    };

    // After quiesce the live WAL is one active segment; everything the
    // retired generations held is in SSTs via the retirement checkpoints.
    let files = wal_files(env.as_ref());
    assert_eq!(files.len(), 1);
    let (live, live_len) = files.into_iter().next().unwrap();

    // Kill the store with the live tail torn at sampled offsets (plus the
    // boundary cases 0 and full length) and recover each image.
    let mut cuts: Vec<usize> = (0..live_len as usize).step_by(509).collect();
    cuts.push(live_len as usize);
    let mut last_recovered = 0u64;
    let mut first_recovered = None;
    for cut in cuts {
        let image = crash_image(env.as_ref(), &live, cut);
        let db = FloDb::open(opts(Arc::clone(&image))).unwrap();
        // Recovered keys must be exactly {0..m}: batches are
        // all-or-nothing (m divisible by the batch size) and nothing
        // retired is ever missing while something newer survives.
        let mut m = 0u64;
        while m < total && db.get(&key(m)).is_some() {
            m += 1;
        }
        for n in m..total {
            assert_eq!(
                db.get(&key(n)),
                None,
                "cut {cut}: key {n} survived although key {m} was lost"
            );
        }
        assert_eq!(
            m % BATCH_OPS,
            0,
            "cut {cut}: a batch was recovered partially (prefix {m})"
        );
        assert!(
            m >= last_recovered,
            "cut {cut}: recovered prefix shrank from {last_recovered} to {m}"
        );
        last_recovered = m;
        first_recovered.get_or_insert(m);
        if cut == live_len as usize {
            assert_eq!(m, total, "the untorn image must recover every acked write");
        }
    }
    // The sweep must have exercised real tearing: the shortest image
    // (live segment cut to nothing) must lose the post-checkpoint tail,
    // or every assertion above was vacuous.
    assert!(
        first_recovered.unwrap() < total,
        "the sweep never actually tore anything"
    );
}

#[test]
fn retirement_io_errors_are_counted_and_leave_the_store_live() {
    // Segment deletion failing must not panic the persist thread, wedge
    // quiesce, or reject writes — it costs disk-footprint boundedness
    // only, and that loss must be *observable*: `wal_retire_errors`
    // counts it (the pre-existing silent "forgotten-but-live" hole).
    let fault = Arc::new(FaultEnv::new(Arc::new(MemEnv::new(None))));
    let env: Arc<dyn Env> = Arc::clone(&fault) as Arc<dyn Env>;
    let total = {
        let db = FloDb::open(opts(Arc::clone(&env))).unwrap();
        fault.arm(FaultPlan::persistent("retire-delete", FaultKind::Io));
        let total = write_until_rotations(&db, 5);
        db.quiesce();

        let stats = db.stats();
        assert!(
            stats.wal_retire_errors > 0,
            "failed deletions must be counted, not forgotten"
        );
        assert!(
            stats.io_retries > 0,
            "deletions must be retried before giving up"
        );
        assert!(fault.injected("retire-delete") > 0, "the fault really fired");
        assert!(!db.is_degraded(), "retirement failure must not latch writes shut");

        // The store stays fully live: writes and reads keep working.
        db.put(b"still-alive", b"yes").unwrap();
        assert_eq!(db.get(b"still-alive"), Some(b"yes".to_vec()));
        for n in 0..total {
            assert_eq!(db.get(&key(n)).as_deref(), Some(&[n as u8; 40][..]), "key {n}");
        }
        // Only boundedness degraded: the untracked segment files linger.
        assert!(
            wal_files(env.as_ref()).len() > 1,
            "failed deletions must leave the segment files on disk"
        );
        total
    };

    // The environment heals; reopen recovers everything acknowledged and
    // prunes the lingering files (they are stale relative to the
    // recorded oldest-live mark).
    fault.disarm_all();
    let db = FloDb::open(opts(Arc::clone(&env))).unwrap();
    assert_eq!(db.get(b"still-alive"), Some(b"yes".to_vec()));
    for n in 0..total {
        assert_eq!(db.get(&key(n)).as_deref(), Some(&[n as u8; 40][..]), "key {n}");
    }
    assert_eq!(
        wal_files(env.as_ref()).len(),
        1,
        "reopen must prune the segments the failed deletions left behind"
    );
}

#[test]
fn rotated_log_survives_crash_and_reopen_prunes_generations() {
    // Crash (drop without quiesce) with several live generations: reopen
    // must replay them in order, then settle the state and leave exactly
    // one fresh generation behind.
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    let total = {
        let mut o = opts(Arc::clone(&env));
        // No retirement: persisting off keeps every generation live, so
        // recovery really crosses generation boundaries.
        o.persist_enabled = false;
        let db = FloDb::open(o).unwrap();
        let total = write_until_rotations(&db, 3);
        assert!(
            wal_files(env.as_ref()).len() >= 4,
            "three rotations must leave four live generations"
        );
        total
    };
    let db = FloDb::open(opts(Arc::clone(&env))).unwrap();
    for n in 0..total {
        assert_eq!(db.get(&key(n)).as_deref(), Some(&[n as u8; 40][..]), "key {n}");
    }
    assert_eq!(
        wal_files(env.as_ref()).len(),
        1,
        "reopen must flush the recovered state and prune consumed generations"
    );
}
