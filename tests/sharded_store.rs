//! Integration tests for the hash-partitioned sharded router
//! (`ShardedFloDb`): routing, batch splitting, fanned-out scans, the
//! sticky sharding record, and per-shard stats aggregation.

use std::ops::ControlFlow;
use std::sync::Arc;

use flodb::storage::{Env, FsEnv, MemEnv};
use flodb::{
    FloDbOptions, KvStore, OpenError, ShardedFloDb, ShardedOptions, WalMode, WriteBatch,
};

fn key(n: u64) -> [u8; 8] {
    n.to_be_bytes()
}

fn opts(shards: u32, env: Arc<dyn Env>) -> ShardedOptions {
    let mut base = FloDbOptions::small_for_tests();
    base.env = env;
    base.wal = WalMode::Enabled { sync: false };
    ShardedOptions::new(shards, base)
}

#[test]
fn point_ops_route_and_read_back() {
    let db = ShardedFloDb::open(opts(4, Arc::new(MemEnv::new(None)))).unwrap();
    for i in 0..500u64 {
        db.put(&key(i), &i.to_le_bytes()).unwrap();
    }
    for i in (0..500u64).step_by(7) {
        db.delete(&key(i)).unwrap();
    }
    for i in 0..500u64 {
        let got = db.get(&key(i));
        if i % 7 == 0 {
            assert_eq!(got, None, "deleted key {i} resurfaced");
        } else {
            assert_eq!(got, Some(i.to_le_bytes().to_vec()), "key {i} lost");
        }
    }
    // Keys actually spread: every shard took some writes.
    let per_shard = db.per_shard_stats();
    assert_eq!(per_shard.len(), 4);
    assert!(
        per_shard.iter().all(|s| s.puts > 0),
        "uniform keys must reach every shard: {:?}",
        per_shard.iter().map(|s| s.puts).collect::<Vec<_>>()
    );
}

#[test]
fn batches_split_across_shards_and_apply_whole() {
    let db = ShardedFloDb::open(opts(4, Arc::new(MemEnv::new(None)))).unwrap();
    let mut batch = WriteBatch::new();
    for i in 0..64u64 {
        batch.put(&key(i), b"batched");
    }
    batch.delete(&key(3));
    db.write(&batch).unwrap();
    assert_eq!(db.get(&key(3)), None, "later delete in the batch wins");
    for i in 0..64u64 {
        if i != 3 {
            assert_eq!(db.get(&key(i)).as_deref(), Some(b"batched".as_slice()));
        }
    }
    let stats = db.stats();
    assert_eq!(stats.puts, 64);
    assert_eq!(stats.deletes, 1);
}

#[test]
fn scans_fan_out_in_global_key_order_and_break_stops_early() {
    let db = ShardedFloDb::open(opts(7, Arc::new(MemEnv::new(None)))).unwrap();
    for i in 0..300u64 {
        db.put(&key(i), &i.to_le_bytes()).unwrap();
    }
    db.delete(&key(42)).unwrap();
    let out = db.scan(&key(10), &key(60));
    let got: Vec<u64> = out
        .iter()
        .map(|(k, _)| u64::from_be_bytes(k.as_slice().try_into().unwrap()))
        .collect();
    let want: Vec<u64> = (10..=60).filter(|&i| i != 42).collect();
    assert_eq!(got, want, "fan-out merge must yield global key order");

    // Break prunes the merge: the visitor sees a prefix and stops.
    let mut seen = Vec::new();
    db.scan_with(&key(0), &key(299), &mut |k, _| {
        seen.push(u64::from_be_bytes(k.try_into().unwrap()));
        if seen.len() == 5 {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    assert_eq!(seen, vec![0, 1, 2, 3, 4]);
}

#[test]
fn sharded_store_recovers_from_wal_after_crash() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    {
        let db = ShardedFloDb::open(opts(4, Arc::clone(&env))).unwrap();
        for i in 0..200u64 {
            db.put(&key(i), &i.to_le_bytes()).unwrap();
        }
        let mut batch = WriteBatch::new();
        for i in 200..232u64 {
            batch.put(&key(i), b"tail");
        }
        db.write(&batch).unwrap();
        // Crash: drop without quiescing.
    }
    let db = ShardedFloDb::open(opts(4, env)).unwrap();
    for i in 0..200u64 {
        assert_eq!(db.get(&key(i)), Some(i.to_le_bytes().to_vec()), "key {i}");
    }
    for i in 200..232u64 {
        assert_eq!(db.get(&key(i)).as_deref(), Some(b"tail".as_slice()));
    }
    assert_eq!(db.scan(&key(0), &key(231)).len(), 232);
}

#[test]
fn reopen_with_different_layout_is_a_typed_error() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    drop(ShardedFloDb::open(opts(4, Arc::clone(&env))).unwrap());

    // Different shard count.
    match ShardedFloDb::open(opts(2, Arc::clone(&env))) {
        Err(OpenError::ShardMismatch { on_disk, requested }) => {
            assert_eq!(on_disk.0, 4);
            assert_eq!(requested.0, 2);
        }
        other => panic!("expected ShardMismatch, got {other:?}"),
    }

    // Same count, different hash seed: just as sticky — keys would route
    // to the wrong shards.
    let mut reseeded = opts(4, Arc::clone(&env));
    reseeded.hash_seed ^= 1;
    match ShardedFloDb::open(reseeded) {
        Err(OpenError::ShardMismatch { on_disk, requested }) => {
            assert_eq!(on_disk.0, requested.0, "counts match; seeds differ");
            assert_ne!(on_disk.1, requested.1);
        }
        other => panic!("expected ShardMismatch, got {other:?}"),
    }

    // The matching layout still opens.
    ShardedFloDb::open(opts(4, env)).unwrap();
}

#[test]
fn sharded_store_round_trips_on_real_files() {
    let dir = std::env::temp_dir().join(format!(
        "flodb-sharded-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let env: Arc<dyn Env> = Arc::new(FsEnv::new(&dir).unwrap());
    {
        let db = ShardedFloDb::open(opts(3, Arc::clone(&env))).unwrap();
        for i in 0..100u64 {
            db.put(&key(i), b"durable").unwrap();
        }
        db.delete(&key(7)).unwrap();
    }
    // The layout on disk is one directory per shard plus the sticky record.
    assert!(dir.join("SHARDING").is_file());
    for s in 0..3 {
        assert!(dir.join(format!("shard-{s:02}")).is_dir(), "shard {s} dir");
    }
    let db = ShardedFloDb::open(opts(3, env)).unwrap();
    assert_eq!(db.get(&key(7)), None);
    for i in 0..100u64 {
        if i != 7 {
            assert_eq!(db.get(&key(i)).as_deref(), Some(b"durable".as_slice()));
        }
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aggregated_stats_sum_per_shard_counters() {
    let db = ShardedFloDb::open(opts(4, Arc::new(MemEnv::new(None)))).unwrap();
    for i in 0..100u64 {
        db.put(&key(i), b"v").unwrap();
    }
    for i in 0..50u64 {
        db.get(&key(i));
    }
    db.scan(&key(0), &key(99));
    let per_shard = db.per_shard_stats();
    let total = db.stats();
    assert_eq!(total.puts, 100);
    assert_eq!(total.puts, per_shard.iter().map(|s| s.puts).sum::<u64>());
    assert_eq!(total.gets, per_shard.iter().map(|s| s.gets).sum::<u64>());
    // One logical scan fans out to one scan per shard.
    assert_eq!(total.scans, u64::from(db.shard_count()));
    assert_eq!(total.scanned_keys, 100);
}

#[test]
fn single_shard_router_behaves_like_plain_store() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
    {
        let db = ShardedFloDb::open(opts(1, Arc::clone(&env))).unwrap();
        assert_eq!(db.shard_count(), 1);
        let mut batch = WriteBatch::new();
        batch.put(b"a", b"1").put(b"b", b"2").delete(b"a");
        db.write(&batch).unwrap();
    }
    let db = ShardedFloDb::open(opts(1, env)).unwrap();
    assert_eq!(db.get(b"a"), None);
    assert_eq!(db.get(b"b").as_deref(), Some(b"2".as_slice()));
}
