//! Concurrency stress tests: FloDB's headline property is that reads,
//! writes and scans all proceed in parallel (§3) while scans stay
//! serializable. These tests hammer that claim from many threads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use flodb::{FloDb, FloDbOptions, KvStore};

fn key(n: u64) -> [u8; 8] {
    n.to_be_bytes()
}

fn db() -> Arc<FloDb> {
    Arc::new(FloDb::open(FloDbOptions::small_for_tests()).unwrap())
}

/// A single writer sweeps keys 0..N in rounds; a serializable scan must
/// observe a *prefix* of that history: round numbers along the key axis
/// form a step function — some prefix of keys at round R, the rest at
/// R - 1. Anything else (a hole, a mix, an inversion) is a torn snapshot.
#[test]
fn scans_see_prefix_consistent_snapshots() {
    const KEYS: u64 = 64;
    let db = db();
    for i in 0..KEYS {
        db.put(&key(i), &0u64.to_le_bytes()).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut round = 1u64;
            while !stop.load(Ordering::Relaxed) {
                for i in 0..KEYS {
                    db.put(&key(i), &round.to_le_bytes()).unwrap();
                }
                round += 1;
            }
        })
    };

    let mut scanners = Vec::new();
    for _ in 0..3 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        scanners.push(std::thread::spawn(move || {
            let mut checked = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let out = db.scan(&key(0), &key(KEYS - 1));
                assert_eq!(out.len(), KEYS as usize, "keys must never vanish");
                let rounds: Vec<u64> = out
                    .iter()
                    .map(|(_, v)| u64::from_le_bytes(v.as_slice().try_into().unwrap()))
                    .collect();
                let max = *rounds.iter().max().unwrap();
                let min = *rounds.iter().min().unwrap();
                assert!(
                    max - min <= 1,
                    "snapshot spans more than two rounds: min={min} max={max}"
                );
                // Step shape: once the value drops to min, it stays there.
                let mut dropped = false;
                for &r in &rounds {
                    if dropped {
                        assert_eq!(r, min, "torn snapshot: {rounds:?}");
                    } else if r == min && max != min {
                        dropped = true;
                    }
                }
                checked += 1;
            }
            checked
        }));
    }

    std::thread::sleep(Duration::from_secs(2));
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    let total: u64 = scanners.into_iter().map(|s| s.join().unwrap()).sum();
    assert!(total > 0, "scanners must have made progress");
}

/// Concurrent writers on overlapping keys: the final value of every key
/// must be one that some writer actually wrote (no corruption, no
/// interleaving of value bytes).
#[test]
fn racing_writers_never_corrupt_values() {
    const KEYS: u64 = 32;
    const WRITERS: u64 = 8;
    let db = db();
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            // Every writer writes its own tag into every key, many times.
            let tag = [w as u8; 16];
            for _ in 0..2000 {
                for i in 0..KEYS {
                    db.put(&key(i), &tag).unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for i in 0..KEYS {
        let v = db.get(&key(i)).expect("key vanished");
        assert_eq!(v.len(), 16);
        assert!(
            v.iter().all(|&b| b == v[0]) && u64::from(v[0]) < WRITERS,
            "value bytes interleaved: {v:?}"
        );
    }
}

/// Deletes racing with scans: a key is either fully present or fully
/// absent in a snapshot; counts per snapshot must be even (writer flips
/// pairs atomically from its own perspective — pairs are written
/// back-to-back, so at most one boundary pair may be split; allow it).
#[test]
fn deletes_racing_with_scans_keep_snapshots_sane() {
    const PAIRS: u64 = 32;
    let db = db();
    let stop = Arc::new(AtomicBool::new(false));
    // Writer alternates: insert all pairs, delete all pairs.
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for i in 0..PAIRS {
                    db.put(&key(2 * i), b"pair").unwrap();
                    db.put(&key(2 * i + 1), b"pair").unwrap();
                }
                for i in 0..PAIRS {
                    db.delete(&key(2 * i)).unwrap();
                    db.delete(&key(2 * i + 1)).unwrap();
                }
            }
        })
    };
    let mut ok_scans = 0u64;
    for _ in 0..50 {
        let out = db.scan(&key(0), &key(2 * PAIRS - 1));
        // Every returned entry must carry the exact value written.
        for (_, v) in &out {
            assert_eq!(v.as_slice(), b"pair");
        }
        ok_scans += 1;
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    assert_eq!(ok_scans, 50);
}

/// Readers racing with writers always see either the old or the new value
/// of a key mid-overwrite — never a third state.
#[test]
fn gets_racing_with_overwrites_see_old_or_new() {
    let db = db();
    db.put(b"k", &0u64.to_le_bytes()).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let latest = Arc::new(AtomicU64::new(0));
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let latest = Arc::clone(&latest);
        std::thread::spawn(move || {
            let mut v = 0u64;
            while !stop.load(Ordering::Relaxed) {
                v += 1;
                db.put(b"k", &v.to_le_bytes()).unwrap();
                latest.store(v, Ordering::Release);
            }
        })
    };
    let mut readers = Vec::new();
    for _ in 0..4 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let latest = Arc::clone(&latest);
        readers.push(std::thread::spawn(move || {
            let mut last_seen = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let floor = latest.load(Ordering::Acquire);
                let v = u64::from_le_bytes(
                    db.get(b"k").expect("key vanished").as_slice().try_into().unwrap(),
                );
                // Freshness: at least as new as the last fully-acknowledged
                // write before the read started.
                assert!(v >= floor.saturating_sub(1), "stale read: {v} < {floor}");
                // Monotonic per reader (single key, in-place updates).
                assert!(v >= last_seen, "time went backwards: {v} < {last_seen}");
                last_seen = v;
            }
        }));
    }
    std::thread::sleep(Duration::from_secs(1));
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}

/// All operation kinds at once, across every system, as a crash-freedom
/// and sanity sweep.
#[test]
fn mixed_chaos_on_all_five_systems() {
    use flodb::baselines::{
        BaselineOptions, HyperLevelDbStore, LevelDbStore, RocksDbClsmStore, RocksDbStore,
    };
    let stores: Vec<Arc<dyn KvStore>> = vec![
        Arc::new(FloDb::open(FloDbOptions::small_for_tests()).unwrap()),
        Arc::new(LevelDbStore::open(BaselineOptions::small_for_tests())),
        Arc::new(HyperLevelDbStore::open(BaselineOptions::small_for_tests())),
        Arc::new(RocksDbStore::open(BaselineOptions::small_for_tests())),
        Arc::new(RocksDbClsmStore::open(BaselineOptions::small_for_tests())),
    ];
    for store in stores {
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..6u64 {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = key((t * 7919 + i) % 512);
                    match i % 5 {
                        0 | 1 => store.put(&k, &i.to_le_bytes()).unwrap(),
                        2 => {
                            let _ = store.get(&k);
                        }
                        3 => store.delete(&k).unwrap(),
                        _ => {
                            let out = store.scan(&key(0), &key(64));
                            for w in out.windows(2) {
                                assert!(w[0].0 < w[1].0, "unsorted scan");
                            }
                        }
                    }
                    i += 1;
                }
                i
            }));
        }
        std::thread::sleep(Duration::from_millis(500));
        stop.store(true, Ordering::Relaxed);
        let ops: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(ops > 0, "{} made no progress", store.name());
        store.quiesce();
    }
}

/// Scans under write pressure must finish (liveness): the fallback scan
/// bounds restarts. Verify a heavy-contention scan terminates and the
/// fallback counter explains any restarts.
#[test]
fn scan_liveness_under_heavy_contention() {
    let db = db();
    for i in 0..128u64 {
        db.put(&key(i), b"x").unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for _ in 0..6 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                db.put(&key(i % 128), &i.to_le_bytes()).unwrap();
                i += 1;
            }
        }));
    }
    // Many scans over the contended range; each must return.
    for _ in 0..100 {
        let out = db.scan(&key(0), &key(127));
        assert_eq!(out.len(), 128);
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    let stats = db.stats();
    assert_eq!(stats.scans, 100);
    // Liveness invariant: every restart chain is bounded by the fallback.
    assert!(
        stats.fallback_scans <= stats.scans,
        "fallbacks cannot exceed scans"
    );
}

/// The pauseWriters protocol: writers blocked during a master scan's
/// drain must help and then complete; nothing deadlocks.
#[test]
fn writers_help_drain_during_scans() {
    let mut opts = FloDbOptions::small_for_tests();
    opts.drain_threads = 1;
    let db = Arc::new(FloDb::open(opts).unwrap());
    // Seed enough data that master drains are non-trivial.
    for i in 0..512u64 {
        db.put(&key(i), b"seed").unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                db.put(&key(1000 + t * 100_000 + i), b"w").unwrap();
                i += 1;
            }
        }));
    }
    for _ in 0..30 {
        let _ = db.scan(&key(0), &key(511));
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    // The protocol counters are internally consistent.
    let f = db.flodb_stats();
    let master = f.master_scans.load(Ordering::Relaxed);
    let piggy = f.piggyback_scans.load(Ordering::Relaxed);
    let restarts = f.scan_restarts.load(Ordering::Relaxed);
    let fallbacks = f.fallback_scans.load(Ordering::Relaxed);
    assert!(master >= 1);
    // Every scan attempt entered as master or piggyback; a scan retries
    // once per restart and skips the coordinator when it falls back.
    assert_eq!(
        master + piggy,
        30 + restarts - fallbacks,
        "scan admission accounting broke"
    );
}

/// Regression: master-scan freezes must never lose concurrent writes.
///
/// The frozen-view race this guards against: a freeze publishes the new
/// view (fresh Membuffer + frozen one) *before* its RCU grace period
/// elapses, so paused writers could start claiming drain buckets while
/// straggling writers — still inside pre-swap read sections — were adding
/// to the frozen buffer. A straggler's entry landing in an
/// already-claimed bucket was silently dropped with the buffer: an
/// acknowledged write lost forever (the long-standing message_queue
/// backlog flake). The drain now opens only after the grace period
/// (`ImmMembuffer::open_for_drain`); this test hammers exactly that
/// window with unique-key writers against back-to-back linearizable
/// scans (every scan a fresh freeze) and then audits every acknowledged
/// key.
#[test]
fn freezing_scans_never_lose_acknowledged_writes() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 30_000;
    let mut opts = FloDbOptions::small_for_tests();
    opts.memory_bytes = 8 * 1024 * 1024; // Keep the flush path quiet-ish.
    opts.linearizable_scans = true; // Every scan freezes and drains.
    let db = Arc::new(FloDb::open(opts).unwrap());
    let stop = Arc::new(AtomicBool::new(false));

    let scanner = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Narrow scans: cheap to collect, so freezes come rapid-fire.
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let lo = (n * 37) % (WRITERS * PER_WRITER);
                let _ = db.scan(&key(lo), &key(lo + 8));
                n += 1;
            }
            n
        })
    };

    let mut writers = Vec::new();
    for w in 0..WRITERS {
        let db = Arc::clone(&db);
        writers.push(std::thread::spawn(move || {
            for i in 0..PER_WRITER {
                let k = w * PER_WRITER + i;
                db.put(&key(k), &k.to_le_bytes()).unwrap();
            }
        }));
    }
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let scans = scanner.join().unwrap();
    assert!(scans > 0, "the scanner must have exercised freezes");

    db.quiesce();
    for k_idx in 0..WRITERS * PER_WRITER {
        assert_eq!(
            db.get(&key(k_idx)),
            Some(k_idx.to_le_bytes().to_vec()),
            "acknowledged write {k_idx} was lost (after {scans} freezing scans)"
        );
    }
}
