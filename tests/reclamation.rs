//! End-to-end epoch-reclamation stress through the real FloDB layers.
//!
//! The shim-level stress test (`third_party/crossbeam-epoch/tests/`)
//! proves the collector itself frees retired garbage; this test proves the
//! *consumers* retire correctly: Membuffer in-place updates and drain
//! removals, and skiplist in-place value replacements, all under
//! contention with readers holding guards, must leave zero unreclaimed
//! garbage at quiescence.
//!
//! This file deliberately contains a single `#[test]`: the reclamation
//! counters are process-global, and an integration-test binary is its own
//! process, so the deferred == executed equality cannot race with
//! unrelated tests.
//!
//! Gated on the umbrella crate's `epoch-shim-stats` feature (which
//! forwards flodb-core's): with the real crossbeam-epoch swapped back in
//! there are no shim counters and `FloDbStats::reclamation()` reads zero,
//! so the equalities below would be vacuous-or-failing.

#![cfg(feature = "epoch-shim-stats")]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use flodb::membuffer::{MemBuffer, MemBufferConfig};
use flodb::memtable::SkipList;
use flodb::{FloDb, FloDbOptions, FloDbStats, KvStore};

fn k(n: u64) -> [u8; 8] {
    n.to_be_bytes()
}

/// Pumps `pin()` + `flush()` rounds until the process-global deferred and
/// executed destruction counters converge (each round seals this thread's
/// bag and can walk the epoch one step past its own pin).
fn pump_to_convergence() -> flodb::ReclamationStats {
    for _ in 0..256 {
        let stats = FloDbStats::reclamation();
        if stats.destructions_executed == stats.destructions_deferred {
            return stats;
        }
        let guard = crossbeam_epoch::pin();
        guard.flush();
        drop(guard);
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    FloDbStats::reclamation()
}

/// Phase 1: raw skiplist — writer threads replace values of overlapping
/// keys in place (each replacement retires the displaced `VersionedValue`)
/// while readers `get` them under their own pins.
fn churn_skiplist() {
    let list = Arc::new(SkipList::new());
    let keys = 64u64;
    for key in 0..keys {
        list.insert(&k(key), Some(&0u64.to_be_bytes()), 1);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let list = Arc::clone(&list);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for key in 0..keys {
                        let v = list.get(&k(key)).expect("churned keys never vanish");
                        assert!(v.seq >= 1);
                    }
                }
            })
        })
        .collect();
    let writers: Vec<_> = (0..4u64)
        .map(|w| {
            let list = Arc::clone(&list);
            std::thread::spawn(move || {
                for round in 0..2000u64 {
                    let key = (w * 977 + round) % keys;
                    let seq = 2 + w * 2000 + round;
                    list.insert(&k(key), Some(&seq.to_be_bytes()), seq);
                }
            })
        })
        .collect();
    for writer in writers {
        writer.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        reader.join().unwrap();
    }
}

/// Phase 2: raw Membuffer — writers update overlapping keys in place
/// (retiring the displaced `HtEntry`) and a drainer claims + removes
/// entries (retiring the removed `HtEntry`) while readers `get`.
fn churn_membuffer() {
    let buffer = Arc::new(MemBuffer::new(MemBufferConfig {
        partition_bits: 2,
        buckets_per_partition: 64,
    }));
    let keys = 128u64;
    for key in 0..keys {
        buffer.add(&k(key), Some(&0u64.to_be_bytes()));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let drainer = {
        let buffer = Arc::clone(&buffer);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for chunk in 0..buffer.total_buckets() {
                    let drained = buffer.claim_bucket(chunk);
                    let tokens: Vec<_> = drained.iter().map(|d| d.token).collect();
                    buffer.remove_drained(&tokens);
                }
            }
        })
    };
    let reader = {
        let buffer = Arc::clone(&buffer);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for key in 0..keys {
                    // Drains race with writers, so presence is optional; the
                    // read itself must never observe freed memory.
                    let _ = buffer.get(&k(key));
                }
            }
        })
    };
    let writers: Vec<_> = (0..4u64)
        .map(|w| {
            let buffer = Arc::clone(&buffer);
            std::thread::spawn(move || {
                for round in 0..2000u64 {
                    let key = (w * 643 + round) % keys;
                    buffer.add(&k(key), Some(&round.to_be_bytes()));
                }
            })
        })
        .collect();
    for writer in writers {
        writer.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    drainer.join().unwrap();
    reader.join().unwrap();
}

/// Phase 3: the full store — concurrent puts/deletes over a small hot key
/// set force Membuffer in-place updates plus background drains into the
/// skiplist; `quiesce` then settles drains, persists, and reclamation.
fn churn_flodb() {
    let db = Arc::new(FloDb::open(FloDbOptions::small_for_tests()).unwrap());
    let writers: Vec<_> = (0..4u64)
        .map(|w| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for round in 0..1500u64 {
                    let key = (w * 389 + round) % 64;
                    if round % 11 == 0 {
                        db.delete(&k(key)).unwrap();
                    } else {
                        db.put(&k(key), &round.to_le_bytes()).unwrap();
                    }
                    if round % 5 == 0 {
                        let _ = db.get(&k((key + 1) % 64));
                    }
                }
            })
        })
        .collect();
    for writer in writers {
        writer.join().unwrap();
    }
    db.quiesce();
}

#[test]
fn consumers_leave_no_unreclaimed_garbage() {
    let before = FloDbStats::reclamation();

    churn_skiplist();
    churn_membuffer();
    churn_flodb();

    let after = pump_to_convergence();
    let deferred = after.destructions_deferred - before.destructions_deferred;
    let executed = after.destructions_executed - before.destructions_executed;
    assert!(
        deferred > 1_000,
        "the churn must actually retire garbage (saw {deferred} deferrals)"
    );
    assert_eq!(
        executed, deferred,
        "all retired nodes must be freed at quiescence \
         (the pre-reclamation shim would report executed = 0)"
    );
    assert_eq!(
        after.destructions_executed, after.destructions_deferred,
        "process-global convergence"
    );
}
