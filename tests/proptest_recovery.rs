//! Property-based crash-recovery test: any sequence of acknowledged
//! operations, interrupted by crashes at arbitrary points, is fully
//! reconstructed by WAL + manifest recovery.

use std::collections::BTreeMap;
use std::sync::Arc;

use flodb::storage::{Env, MemEnv};
use flodb::{FloDb, FloDbOptions, KvStore, WalMode};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Put(u8, u8),
    Delete(u8),
    /// Push the memory component to disk (exercises manifest recovery).
    Flush,
    /// Drop the store and reopen it (simulated crash + recovery).
    Crash,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        6 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Step::Put(k, v)),
        2 => any::<u8>().prop_map(Step::Delete),
        1 => Just(Step::Flush),
        2 => Just(Step::Crash),
    ]
}

fn key(k: u8) -> [u8; 8] {
    (u64::from(k) << 32 | 0xAB).to_be_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    #[test]
    fn acknowledged_writes_survive_crashes(
        steps in proptest::collection::vec(step_strategy(), 1..80),
    ) {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new(None));
        let opts = || {
            let mut o = FloDbOptions::small_for_tests();
            o.env = Arc::clone(&env);
            o.wal = WalMode::Enabled { sync: false };
            o
        };
        let mut db = Some(FloDb::open(opts()).unwrap());
        let mut model: BTreeMap<[u8; 8], Vec<u8>> = BTreeMap::new();
        for step in &steps {
            match *step {
                Step::Put(k, v) => {
                    db.as_ref().unwrap().put(&key(k), &[v]).unwrap();
                    model.insert(key(k), vec![v]);
                }
                Step::Delete(k) => {
                    db.as_ref().unwrap().delete(&key(k)).unwrap();
                    model.remove(&key(k));
                }
                Step::Flush => db.as_ref().unwrap().flush_all(),
                Step::Crash => {
                    drop(db.take());
                    db = Some(FloDb::open(opts()).unwrap());
                }
            }
        }
        // One final crash, then verify everything.
        drop(db.take());
        let db = FloDb::open(opts()).unwrap();
        for k in 0..=255u8 {
            prop_assert_eq!(
                db.get(&key(k)),
                model.get(&key(k)).cloned(),
                "key {} diverged after recovery",
                k
            );
        }
        // Scans see the recovered state too.
        let all = db.scan(&key(0), &key(255));
        let want: Vec<(Vec<u8>, Vec<u8>)> = model
            .iter()
            .map(|(k, v)| (k.to_vec(), v.clone()))
            .collect();
        prop_assert_eq!(all, want);
    }
}
