//! Integration tests of the engine telemetry subsystem (PR 10): the
//! shared histogram against a sorted-vector oracle, the flight
//! recorder's bounded-memory contract, and end-to-end p99 attribution —
//! a sync-WAL run whose write tail is explained by fsync time, and a
//! stall-inducing run whose tail is explained by `write_stall_ns` plus
//! the begin/end event pair in the trace.

use std::sync::Arc;

use flodb::core::telemetry::{Histogram, OpClass, StageClass, TraceEventKind, TraceRing};
use flodb::storage::{MemEnv, ThrottleConfig};
use flodb::{FloDb, FloDbOptions, KvStore, ShardedFloDb, ShardedOptions, TelemetryLevel, WalMode};

/// Deterministic xorshift64* — the tests need varied samples, not
/// cryptographic ones, and the container has no rand crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// The oracle: exact percentile over the sorted samples, matching the
/// histogram's ceil-rank convention.
fn oracle_percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank - 1]
}

#[test]
fn histogram_quantiles_track_a_sorted_vec_oracle() {
    // Samples spanning six decades, the shape of real latencies.
    let mut rng = Rng(0xF10D_B10);
    let mut h = Histogram::new();
    let mut samples = Vec::new();
    for _ in 0..20_000 {
        let decade = 10u64.pow((rng.next() % 6) as u32); // 1ns..100us scale
        let v = decade + rng.next() % (9 * decade).max(1);
        h.record(v);
        samples.push(v);
    }
    samples.sort_unstable();
    assert_eq!(h.count(), samples.len() as u64);
    assert_eq!(h.max_ns(), *samples.last().unwrap());
    for p in [10.0, 50.0, 90.0, 95.0, 99.0, 99.9] {
        let exact = oracle_percentile(&samples, p) as f64;
        let approx = h.percentile_ns(p) as f64;
        // The log-linear layout guarantees ≈3% relative bucket error;
        // allow 5% for the midpoint convention at decade edges.
        assert!(
            (approx - exact).abs() <= exact * 0.05 + 1.0,
            "p{p}: histogram {approx} vs oracle {exact}"
        );
    }
}

#[test]
fn histogram_merge_is_associative_and_matches_pooled_recording() {
    let mut rng = Rng(0xCAFE);
    let parts: Vec<Vec<u64>> = (0..3)
        .map(|_| (0..2_000).map(|_| 1 + rng.next() % 1_000_000).collect())
        .collect();
    let hist = |vals: &[u64]| {
        let mut h = Histogram::new();
        for &v in vals {
            h.record(v);
        }
        h
    };
    let [a, b, c] = [hist(&parts[0]), hist(&parts[1]), hist(&parts[2])];
    // (a ∪ b) ∪ c == a ∪ (b ∪ c) == one histogram fed everything.
    let mut ab_c = a.clone();
    ab_c.merge(&b);
    ab_c.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut a_bc = a.clone();
    a_bc.merge(&bc);
    let pooled = hist(&parts.concat());
    for h in [&ab_c, &a_bc] {
        assert_eq!(h.count(), pooled.count());
        assert_eq!(h.max_ns(), pooled.max_ns());
        for p in [50.0, 95.0, 99.0] {
            assert_eq!(h.percentile_ns(p), pooled.percentile_ns(p));
        }
    }
}

#[test]
fn trace_ring_wraps_without_growing() {
    let ring = TraceRing::with_capacity(64);
    let cap = ring.capacity();
    // Push three laps' worth of events from several threads: memory is
    // fixed at construction, so the dump can never exceed capacity and
    // the survivors are the newest tickets.
    let ring = Arc::new(ring);
    let handles: Vec<_> = (0..4u32)
        .map(|t| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..(3 * 64) {
                    ring.push(TraceEventKind::Drain, t, i as u64, 0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let events = ring.dump();
    assert!(events.len() <= cap, "{} events > {cap} slots", events.len());
    assert_eq!(ring.recorded(), 4 * 3 * 64);
    // Everything still resident is from the final lap of tickets.
    let oldest_possible = ring.recorded() - cap as u64;
    assert!(events.iter().all(|e| e.ticket >= oldest_possible));
    assert!(events.windows(2).all(|w| w[0].ticket < w[1].ticket));
}

#[test]
fn sync_wal_run_attributes_the_write_tail_to_fsync() {
    let mut opts = FloDbOptions::small_for_tests();
    opts.wal = WalMode::Enabled { sync: true };
    opts.telemetry = TelemetryLevel::Full;
    let db = FloDb::open(opts).unwrap();
    for i in 0..500u64 {
        db.put(&i.to_be_bytes(), &[0x5A; 128]).unwrap();
    }
    let stats = db.stats();
    assert!(stats.wal_sync_ns > 0, "sync-on-write run must accrue fsync time");
    let snap = db.telemetry();
    assert_eq!(snap.level, TelemetryLevel::Full);
    assert_eq!(snap.op(OpClass::Put).count(), 500);
    let fsync = snap.stage_summary(StageClass::WalFsync);
    assert!(fsync.count > 0, "every synced append records a WalFsync stage");
    // Attribution: the time the engine says it spent in fsync is the
    // time the WAL layer measured (same counter, two export paths).
    assert_eq!(snap.counters.wal_sync_ns, stats.wal_sync_ns);
    // And the write path is at least as slow as the fsync inside it.
    let put = snap.op_summary(OpClass::Put);
    assert!(
        put.p99_ns >= fsync.p50_ns,
        "write p99 {} cannot undercut the median fsync {}",
        put.p99_ns,
        fsync.p50_ns
    );
}

#[test]
fn stalled_run_attributes_the_tail_to_backpressure() {
    // Smallest legal memory component over a slow simulated disk: the
    // writer outruns persistence and must stall for Memtable room.
    let mut opts = FloDbOptions::small_for_tests();
    opts.memory_bytes = 64 * 1024;
    opts.env = Arc::new(MemEnv::new(Some(ThrottleConfig {
        write_bytes_per_sec: 1024 * 1024,
        burst_bytes: 16 * 1024,
    })));
    opts.telemetry = TelemetryLevel::Full;
    let db = FloDb::open(opts).unwrap();
    let value = vec![0xA5u8; 1024];
    for i in 0..1_000u64 {
        db.put(&i.to_be_bytes(), &value).unwrap();
        if i % 64 == 0 && db.stats().write_stall_ns > 0 {
            break;
        }
    }
    let stats = db.stats();
    assert!(
        stats.write_stall_ns > 0,
        "a writer outrunning a 1 MB/s disk on a 64 KB budget must stall"
    );
    let snap = db.telemetry();
    assert!(snap.stage(StageClass::WriteStall).count() > 0);
    // The flight recorder explains the same tail: a begin/end pair per
    // stall, the end event carrying the measured duration.
    let trace = db.trace_dump();
    assert!(trace.iter().any(|e| e.kind == TraceEventKind::StallBegin));
    let ends: Vec<_> = trace
        .iter()
        .filter(|e| e.kind == TraceEventKind::StallEnd)
        .collect();
    assert!(!ends.is_empty());
    assert!(ends.iter().all(|e| e.a > 0), "StallEnd carries the duration");
}

#[test]
fn off_level_records_nothing() {
    let mut opts = FloDbOptions::small_for_tests();
    opts.telemetry = TelemetryLevel::Off;
    let db = FloDb::open(opts).unwrap();
    for i in 0..200u64 {
        db.put(&i.to_be_bytes(), b"v").unwrap();
        db.get(&i.to_be_bytes());
    }
    db.flush_all();
    assert!(db.trace_dump().is_empty(), "Off runs no flight recorder");
    let snap = db.telemetry();
    assert_eq!(snap.level, TelemetryLevel::Off);
    assert_eq!(snap.op(OpClass::Put).count(), 0);
    assert_eq!(snap.stage(StageClass::MemtableFlush).count(), 0);
    // The pre-existing counters still work — Off only silences the new
    // machinery, not StoreStats.
    assert_eq!(snap.counters.puts, 200);
}

#[test]
fn counters_level_gets_events_and_durations_but_no_histograms() {
    let mut opts = FloDbOptions::small_for_tests();
    opts.telemetry = TelemetryLevel::Counters; // the default, pinned explicitly
    opts.wal = WalMode::Enabled { sync: true };
    let db = FloDb::open(opts).unwrap();
    for i in 0..300u64 {
        db.put(&i.to_be_bytes(), &[1u8; 64]).unwrap();
    }
    db.flush_all();
    assert!(db.stats().wal_sync_ns > 0, "duration counters run at Counters");
    assert!(
        db.trace_dump().iter().any(|e| e.kind == TraceEventKind::Flush),
        "the flight recorder runs at Counters"
    );
    let snap = db.telemetry();
    assert_eq!(snap.op(OpClass::Put).count(), 0, "histograms need Full");
}

#[test]
fn snapshot_delta_isolates_an_interval_of_live_traffic() {
    let mut opts = FloDbOptions::small_for_tests();
    opts.telemetry = TelemetryLevel::Full;
    let db = FloDb::open(opts).unwrap();
    for i in 0..100u64 {
        db.put(&i.to_be_bytes(), b"warmup").unwrap();
    }
    let before = db.telemetry();
    for i in 0..40u64 {
        db.put(&i.to_be_bytes(), b"interval").unwrap();
        db.get(&i.to_be_bytes());
    }
    let delta = db.telemetry().delta_since(&before);
    assert_eq!(delta.counters.puts, 40);
    assert_eq!(delta.counters.gets, 40);
    assert_eq!(delta.op(OpClass::Put).count(), 40);
    assert_eq!(delta.op(OpClass::Get).count(), 40);
    assert_eq!(delta.op(OpClass::Scan).count(), 0);
}

#[test]
fn exports_render_from_a_live_store() {
    let mut opts = FloDbOptions::small_for_tests();
    opts.telemetry = TelemetryLevel::Full;
    let db = FloDb::open(opts).unwrap();
    for i in 0..50u64 {
        db.put(&i.to_be_bytes(), b"v").unwrap();
    }
    let snap = db.telemetry();
    let text = snap.to_prometheus_text();
    assert!(text.contains("flodb_puts 50"));
    assert!(text.contains("flodb_op_latency_ns{op=\"put\",quantile=\"p99\"}"));
    let json = snap.to_json();
    assert!(json.contains("\"schema\": \"flodb-telemetry/v1\""));
    assert!(json.contains("\"op\": \"put\""));
}

#[test]
fn sharded_rollup_merges_every_shard() {
    let mut base = FloDbOptions::small_for_tests();
    base.telemetry = TelemetryLevel::Full;
    let db = ShardedFloDb::open(ShardedOptions::new(4, base)).unwrap();
    for i in 0..400u64 {
        db.put(format!("key-{i:05}").as_bytes(), b"v").unwrap();
    }
    let total = db.telemetry();
    assert_eq!(total.level, TelemetryLevel::Full);
    assert_eq!(total.counters.puts, 400);
    assert_eq!(total.op(OpClass::Put).count(), 400);
    let per_shard = db.per_shard_telemetry();
    assert_eq!(per_shard.len(), 4);
    let summed: u64 = per_shard.iter().map(|s| s.op(OpClass::Put).count()).sum();
    assert_eq!(summed, 400);
    // Routing spread the keys: no shard saw everything.
    assert!(per_shard.iter().all(|s| s.op(OpClass::Put).count() < 400));
}
