//! End-to-end fault sweep: every registered trip point of the
//! fault-injection env, exercised against a live store.
//!
//! The sweep enumerates [`FaultEnv::trip_points`] at runtime — a trip
//! point added to the registry without a survivable store behavior shows
//! up here as a failure, not as a silent coverage gap. For every site the
//! contract is the same:
//!
//! - an injected failure surfaces as a **typed error** (`OpenError` /
//!   `WriteError`) or a **documented degradation** — never a panic;
//! - `quiesce()` returns (no wedged background thread);
//! - every **acknowledged** write stays readable while the store is up;
//! - after the environment heals, a reopen recovers every acknowledged
//!   write — the reopen-heals contract of ARCHITECTURE.md "Failure
//!   model".
//!
//! Dedicated cells cover the fault *kinds* (ENOSPC, transient-then-
//! recover, short write), a sharded store with one degraded shard, and a
//! crash-after-fault combination (injected torn append + torn live
//! tail).

use std::collections::HashSet;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use flodb::storage::{Env, FaultEnv, FaultKind, FaultPlan, MemEnv, StorageError};
use flodb::{
    FloDb, FloDbOptions, KvStore, ShardedFloDb, ShardedOptions, WalMode, WriteError,
};

const SEED_KEYS: u64 = 400;
const SESSION_KEYS: u64 = 4000;
const VALUE_LEN: usize = 40;

fn key(n: u64) -> [u8; 8] {
    n.to_be_bytes()
}

fn value(n: u64) -> [u8; VALUE_LEN] {
    [n as u8; VALUE_LEN]
}

/// Small segments so a sweep session drives rotation, retirement,
/// flushes, and compaction — the activity the deeper trip points
/// (tables, manifest edits, segment deletion) need to fire.
fn opts(env: Arc<dyn Env>) -> FloDbOptions {
    let mut opts = FloDbOptions::small_for_tests();
    opts.env = env;
    opts.wal = WalMode::Enabled { sync: false };
    opts.wal_segment_max_bytes = 8 * 1024;
    opts
}

/// Runs `f` on its own thread and fails the test if it neither finishes
/// nor panics within the deadline — a wedged `quiesce()` or a deadlocked
/// background thread must show up as a failure, not a test-runner hang.
fn with_watchdog(label: &str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let handle = thread::Builder::new()
        .name(label.to_string())
        .spawn(move || {
            f();
            let _ = tx.send(());
        })
        .unwrap();
    match rx.recv_timeout(Duration::from_secs(120)) {
        Ok(()) => handle.join().unwrap(),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The cell panicked: propagate its message.
            handle.join().unwrap();
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{label}: wedged — no completion within 120s");
        }
    }
}

/// Opens a store on `env`, writes the seed keys, settles, and closes —
/// the on-disk state every armed cell starts from (manifest, tables,
/// and a live WAL generation all exist).
fn seed_store(env: &Arc<dyn Env>) {
    let db = FloDb::open(opts(Arc::clone(env))).unwrap();
    for n in 0..SEED_KEYS {
        db.put(&key(n), &value(n)).unwrap();
    }
    db.quiesce();
}

/// One sweep cell: a persistent I/O fault at `site`, from a seeded
/// store, through reopen, a write session, shutdown, heal, and recovery.
fn sweep_site(site: &'static str) {
    let fault = Arc::new(FaultEnv::new(Arc::new(MemEnv::new(None))));
    let env: Arc<dyn Env> = Arc::clone(&fault) as Arc<dyn Env>;
    seed_store(&env);
    fault.arm(FaultPlan::persistent(site, FaultKind::Io));

    // Keys acknowledged while the fault was armed (on top of the seed).
    let mut acked = 0u64;
    match FloDb::open(opts(Arc::clone(&env))) {
        Err(e) => {
            // A fault during open must surface as a typed error carrying
            // the injected failure — never a panic, never a half-open
            // store.
            let msg = e.to_string();
            assert!(msg.contains("injected fault"), "{site}: foreign open error: {msg}");
        }
        Ok(db) => {
            let mut rejected = false;
            for n in SEED_KEYS..SEED_KEYS + SESSION_KEYS {
                match db.put(&key(n), &value(n)) {
                    Ok(()) => acked += 1,
                    Err(e) => {
                        assert!(
                            matches!(e, WriteError::Wal(_) | WriteError::Poisoned(_)),
                            "{site}: untyped write failure: {e:?}"
                        );
                        rejected = true;
                        break;
                    }
                }
            }
            // Whatever the fault broke, every acknowledged write must
            // stay readable on the live handle (reads are served from
            // resident state; degradation never unmaps them).
            for n in 0..SEED_KEYS + acked {
                assert!(db.get(&key(n)).is_some(), "{site}: acked key {n} unreadable");
            }
            if rejected {
                // Rejection is a latch, not a flake: the next write is
                // rejected too (typed), without touching the log.
                assert!(db.put(b"again", b"x").is_err(), "{site}: rejection not sticky");
            }
            db.quiesce(); // Must return — the cell runs under a watchdog.
            drop(db); // Must join background threads without hanging.
        }
    }
    assert!(
        fault.injected(site) > 0,
        "{site}: the armed fault never fired — dead trip point?"
    );

    // The environment heals; reopen must succeed and recover every
    // acknowledged write (seed + armed session).
    fault.disarm_all();
    let db = FloDb::open(opts(Arc::clone(&env)))
        .unwrap_or_else(|e| panic!("{site}: reopen after heal failed: {e}"));
    for n in 0..SEED_KEYS + acked {
        assert_eq!(
            db.get(&key(n)).as_deref(),
            Some(&value(n)[..]),
            "{site}: acknowledged key {n} lost"
        );
    }
    db.quiesce();
}

#[test]
fn every_trip_point_is_survivable() {
    for &site in FaultEnv::trip_points() {
        if site.starts_with("sharding-") {
            // The sharding record is only written on the *first* open of
            // a sharded root; those sites get their own cell below.
            continue;
        }
        with_watchdog(site, move || sweep_site(site));
    }
}

#[test]
fn sharding_trip_points_fail_open_typed_and_heal() {
    for site in ["sharding-create", "sharding-append", "sharding-sync"] {
        with_watchdog(site, move || {
            let fault = Arc::new(FaultEnv::new(Arc::new(MemEnv::new(None))));
            let env: Arc<dyn Env> = Arc::clone(&fault) as Arc<dyn Env>;
            fault.arm(FaultPlan::persistent(site, FaultKind::Io));
            let err = ShardedFloDb::open(ShardedOptions::new(2, opts(Arc::clone(&env))))
                .unwrap_err();
            assert!(err.to_string().contains("injected fault"), "{site}: {err}");
            assert!(fault.injected(site) > 0, "{site}: never fired");

            // The failed creation left no torn record behind: after the
            // environment heals, the same open succeeds from scratch.
            fault.disarm_all();
            let db = ShardedFloDb::open(ShardedOptions::new(2, opts(Arc::clone(&env))))
                .unwrap_or_else(|e| panic!("{site}: reopen after heal failed: {e}"));
            db.put(b"k", b"v").unwrap();
            assert_eq!(db.get(b"k"), Some(b"v".to_vec()));
            db.quiesce();
        });
    }
}

#[test]
fn enospc_surfaces_with_the_storage_full_kind() {
    let fault = Arc::new(FaultEnv::new(Arc::new(MemEnv::new(None))));
    let env: Arc<dyn Env> = Arc::clone(&fault) as Arc<dyn Env>;
    let db = FloDb::open(opts(Arc::clone(&env))).unwrap();
    db.put(b"before", b"1").unwrap();

    fault.arm(FaultPlan::persistent("segment-append", FaultKind::Enospc));
    let err = db.put(b"full", b"2").unwrap_err();
    let WriteError::Wal(e) = err else {
        panic!("first ENOSPC must surface as Wal, got {err:?}");
    };
    assert!(
        matches!(
            &*e,
            StorageError::Io(io) if io.kind() == std::io::ErrorKind::StorageFull
        ),
        "the ErrorKind must survive the trip through the store: {e:?}"
    );
    assert_eq!(db.get(b"before"), Some(b"1".to_vec()));
}

#[test]
fn transient_fault_is_retried_and_recovers_without_degrading() {
    with_watchdog("transient-table-create", || {
        let fault = Arc::new(FaultEnv::new(Arc::new(MemEnv::new(None))));
        let env: Arc<dyn Env> = Arc::clone(&fault) as Arc<dyn Env>;
        let db = FloDb::open(opts(Arc::clone(&env))).unwrap();
        // Fail the next two table creations: within the persist thread's
        // retry budget, so the flush must succeed on a later attempt.
        fault.arm(FaultPlan::transient("table-create", 0, FaultKind::Io, 2));

        let mut next = 0u64;
        while db.stats().persists == 0 {
            db.put(&key(next), &value(next)).unwrap();
            next += 1;
            assert!(next < 200_000, "no flush after {next} writes");
        }
        db.quiesce();

        let stats = db.stats();
        assert!(stats.io_retries >= 2, "retries must be counted: {stats:?}");
        assert_eq!(stats.io_degraded, 0, "a recovered fault must not degrade");
        assert!(!db.is_degraded());
        assert_eq!(fault.injected("table-create"), 2);
        db.put(b"still-writable", b"yes").unwrap();
        for n in 0..next {
            assert!(db.get(&key(n)).is_some(), "key {n}");
        }
    });
}

#[test]
fn short_write_tears_the_frame_and_recovery_drops_it() {
    let fault = Arc::new(FaultEnv::new(Arc::new(MemEnv::new(None))));
    let env: Arc<dyn Env> = Arc::clone(&fault) as Arc<dyn Env>;
    {
        let db = FloDb::open(opts(Arc::clone(&env))).unwrap();
        for n in 0..50 {
            db.put(&key(n), &value(n)).unwrap();
        }
        // The next segment append lands only half its bytes — a torn
        // frame is now physically in the live log.
        fault.arm(FaultPlan::transient("segment-append", 0, FaultKind::ShortWrite, 1));
        let err = db.put(b"torn", &[0xAB; 64]).unwrap_err();
        assert!(matches!(err, WriteError::Wal(_)), "got {err:?}");
        assert_eq!(fault.injected("segment-append"), 1);
        // Crash while poisoned (drop without quiesce).
    }
    fault.disarm_all();
    // Recovery must CRC-drop the torn frame: the unacknowledged write is
    // gone, every acknowledged one is intact, and the open is clean.
    let db = FloDb::open(opts(Arc::clone(&env))).unwrap();
    assert_eq!(db.get(b"torn"), None, "a torn, unacknowledged frame replayed");
    for n in 0..50 {
        assert_eq!(db.get(&key(n)).as_deref(), Some(&value(n)[..]), "key {n}");
    }
}

#[test]
fn one_degraded_shard_leaves_its_siblings_untouched() {
    with_watchdog("sharded-degrade", || {
        const SHARDS: u32 = 4;
        let fault = Arc::new(FaultEnv::new(Arc::new(MemEnv::new(None))));
        let env: Arc<dyn Env> = Arc::clone(&fault) as Arc<dyn Env>;
        let db = ShardedFloDb::open(ShardedOptions::new(SHARDS, opts(Arc::clone(&env))))
            .unwrap();
        let part = *db.partitioner();
        let target = 1u32; // The shard we will degrade.

        // Seed every shard, then settle so no background work is pending
        // anywhere when the fault arms.
        let mut acked: Vec<u64> = Vec::new();
        for n in 0..SEED_KEYS {
            db.put(&key(n), &value(n)).unwrap();
            acked.push(n);
        }
        db.quiesce();

        // From here on every table creation fails — but only the target
        // shard receives traffic, so only *its* persist thread can hit
        // the fault.
        fault.arm(FaultPlan::persistent("table-create", FaultKind::Io));
        let mut n = SEED_KEYS;
        while db.degraded_shards().is_empty() {
            if part.shard_of(&key(n)) == target {
                match db.put(&key(n), &value(n)) {
                    Ok(()) => acked.push(n),
                    Err(e) => {
                        assert!(matches!(e, WriteError::Poisoned(_)), "got {e:?}");
                        break;
                    }
                }
            }
            n += 1;
            assert!(n < 1_000_000, "target shard never degraded");
        }
        assert_eq!(db.degraded_shards(), vec![target], "exactly one shard degrades");

        // Failure isolation: sibling shards keep accepting writes...
        let mut sibling = SEED_KEYS + SESSION_KEYS;
        for _ in 0..20 {
            while part.shard_of(&key(sibling)) == target {
                sibling += 1;
            }
            db.put(&key(sibling), &value(sibling)).unwrap();
            acked.push(sibling);
            sibling += 1;
        }
        // ...the degraded shard rejects its writes (typed, sticky)...
        let mut bad = SEED_KEYS + SESSION_KEYS;
        while part.shard_of(&key(bad)) != target {
            bad += 1;
        }
        assert!(matches!(
            db.put(&key(bad), b"x").unwrap_err(),
            WriteError::Poisoned(_)
        ));
        // ...and every acknowledged key stays readable, including the
        // degraded shard's (its resident state keeps serving).
        for &k in &acked {
            assert!(db.get(&key(k)).is_some(), "acked key {k} unreadable");
        }
        // A fanned-out scan still works across the degraded shard.
        let mut seen: HashSet<u64> = HashSet::new();
        for (k, _) in db.scan(&key(0), &key(u64::MAX)) {
            seen.insert(u64::from_be_bytes(k.as_slice().try_into().unwrap()));
        }
        for &k in &acked {
            assert!(seen.contains(&k), "acked key {k} missing from scan");
        }
        assert!(db.stats().io_degraded > 0, "degradation must be counted");

        db.quiesce(); // Degraded shard must not wedge the router's settle.
        drop(db);

        // Heal + reopen: the degraded shard's WAL was never retired, so
        // recovery replays everything it had only in memory.
        fault.disarm_all();
        let db = ShardedFloDb::open(ShardedOptions::new(SHARDS, opts(Arc::clone(&env))))
            .unwrap();
        assert!(db.degraded_shards().is_empty(), "reopen heals the latch");
        for &k in &acked {
            assert_eq!(db.get(&key(k)).as_deref(), Some(&value(k)[..]), "key {k} lost");
        }
        db.quiesce();
    });
}

/// Copies every file of `src` into a fresh env, truncating `truncate` to
/// its first `keep` bytes — a crash image with the live tail torn there.
fn crash_image(src: &dyn Env, truncate: &str, keep: usize) -> Arc<dyn Env> {
    let dst = MemEnv::new(None);
    for name in src.list().unwrap() {
        let file = src.open_random(&name).unwrap();
        let len = if name == truncate {
            keep.min(file.len() as usize)
        } else {
            file.len() as usize
        };
        let data = file.read_at(0, len).unwrap();
        let mut out = dst.new_writable(&name).unwrap();
        out.append(&data).unwrap();
        out.finish().unwrap();
    }
    Arc::new(dst)
}

#[test]
fn crash_after_injected_fault_still_recovers_a_clean_prefix() {
    // The combination: an injected torn append poisons the store, then
    // the process dies AND the live tail tears further (the crash image
    // truncates it mid-frame). Recovery must still produce a clean
    // prefix of the acknowledged writes — two independent tears must not
    // compound into corruption or replay of the unacknowledged write.
    let fault = Arc::new(FaultEnv::new(Arc::new(MemEnv::new(None))));
    let env: Arc<dyn Env> = Arc::clone(&fault) as Arc<dyn Env>;
    let total = {
        let db = FloDb::open(opts(Arc::clone(&env))).unwrap();
        for n in 0..300u64 {
            db.put(&key(n), &value(n)).unwrap();
        }
        fault.arm(FaultPlan::transient("segment-append", 0, FaultKind::ShortWrite, 1));
        assert!(db.put(b"poisoned", &[0xCD; 64]).is_err());
        300u64
        // Crash while poisoned.
    };
    fault.disarm_all();

    let live = {
        let mut logs: Vec<(String, u64)> = env
            .list()
            .unwrap()
            .into_iter()
            .filter(|n| n.ends_with(".log"))
            .map(|n| {
                let len = env.open_random(&n).unwrap().len();
                (n, len)
            })
            .collect();
        logs.sort();
        logs.pop().unwrap() // Highest generation = the live tail.
    };
    for cut in [0usize, 17, 1024, live.1 as usize / 2, live.1 as usize] {
        let image = crash_image(env.as_ref(), &live.0, cut);
        let db = FloDb::open(opts(Arc::clone(&image)))
            .unwrap_or_else(|e| panic!("cut {cut}: recovery failed: {e}"));
        assert_eq!(db.get(b"poisoned"), None, "cut {cut}: unacked write replayed");
        let mut m = 0u64;
        while m < total && db.get(&key(m)).is_some() {
            m += 1;
        }
        for n in m..total {
            assert_eq!(
                db.get(&key(n)),
                None,
                "cut {cut}: key {n} survived although key {m} was lost"
            );
        }
    }
}
