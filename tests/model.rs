//! Deterministic model checks of the concurrency invariants
//! ARCHITECTURE.md states in prose. Compiled only under
//! `RUSTFLAGS="--cfg flodb_model"`, which swaps `flodb_sync::shim` to the
//! `flodb-check` instrumented primitives:
//!
//! ```sh
//! RUSTFLAGS="--cfg flodb_model" cargo test --test model
//! ```
//!
//! Each test explores schedules of one scenario body (see
//! `model_support/`) with both a bounded-preemption DFS and a seeded
//! random walk. Budgets are sized to finish in seconds; raise
//! `FLODB_CHECK_ITERS` locally for a deeper soak.

#![cfg(all(flodb_model, not(flodb_model_mutation)))]

mod model_support;

use flodb_check::Builder;
use model_support as scenarios;

/// DFS with 2 preemptions, capped; catches every race flodb-check can
/// express within the bound while keeping CI under a few minutes.
fn dfs() -> Builder {
    Builder::dfs(2).iterations(3000)
}

/// A seeded random walk as a second, differently-biased probe.
fn random() -> Builder {
    Builder::new().iterations(300).seed(0xF10D_B6)
}

#[test]
fn freeze_gate_holds() {
    dfs().model(scenarios::freeze_gate_body);
}

#[test]
fn freeze_gate_holds_random() {
    random().model(scenarios::freeze_gate_body);
}

#[test]
fn gate_claim_holds() {
    dfs().model(scenarios::gate_claim_body);
}

#[test]
fn gate_claim_holds_random() {
    random().model(scenarios::gate_claim_body);
}

#[test]
fn persist_switch_loses_nothing() {
    dfs().model(scenarios::persist_switch_body);
}

#[test]
fn persist_switch_loses_nothing_random() {
    random().model(scenarios::persist_switch_body);
}

#[test]
fn group_commit_broadcasts_outcomes() {
    dfs().model(scenarios::group_commit_broadcast_body);
}

#[test]
fn group_commit_broadcasts_errors() {
    dfs().model(scenarios::group_commit_error_body);
}

#[test]
fn group_commit_broadcasts_injected_faults() {
    dfs().model(scenarios::group_commit_injected_fault_body);
}

#[test]
fn group_commit_broadcasts_injected_faults_random() {
    random().model(scenarios::group_commit_injected_fault_body);
}

#[test]
fn router_split_commits_whole_sub_batches() {
    dfs().model(scenarios::router_split_body);
}

#[test]
fn router_split_commits_whole_sub_batches_random() {
    random().model(scenarios::router_split_body);
}

#[test]
fn inflight_grace_covers_logged_to_applied() {
    dfs().model(scenarios::inflight_grace_body);
}

#[test]
fn rcu_update_waits_for_old_view_readers() {
    dfs().model(scenarios::rcu_view_switch_body);
}

#[test]
fn trace_ring_publishes_untorn_events() {
    dfs().model(scenarios::trace_ring_body);
}

#[test]
fn trace_ring_publishes_untorn_events_random() {
    random().model(scenarios::trace_ring_body);
}
