//! Offline API-compatible mini `criterion`.
//!
//! The build container has no crates.io access, so this workspace ships a
//! small wall-clock benchmark harness with criterion's calling convention:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. It warms up briefly, runs a fixed-duration
//! measurement, and prints mean/min time per iteration — no statistics,
//! plots, or baselines.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (accepted for compatibility; the
/// shim re-runs setup per batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    measure_for: Duration,
    /// (total time, iterations) of the measurement phase.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and calibration: find an iteration count lasting long
        // enough for the clock to resolve.
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed > Duration::from_millis(1) || n >= 1 << 20 {
                let per_iter = elapsed.max(Duration::from_nanos(1)) / n as u32;
                let target = (self.measure_for.as_nanos() / per_iter.as_nanos().max(1))
                    .clamp(1, 1 << 24) as u64;
                let start = Instant::now();
                for _ in 0..target {
                    black_box(routine());
                }
                self.result = Some((start.elapsed(), target));
                return;
            }
            n *= 2;
        }
    }

    /// Times `routine` on fresh inputs built by `setup` (setup excluded
    /// from the timing).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + self.measure_for;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while Instant::now() < deadline || iters == 0 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
            if iters >= 1 << 20 {
                break;
            }
        }
        self.result = Some((total, iters));
    }

    /// Like `iter_batched`, timing the routine on references.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        self.iter_batched(setup, |mut input| routine(&mut input), _size);
    }

    /// Times with a caller-controlled loop: `routine(iters)` must return
    /// the elapsed time of `iters` iterations.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let iters = 10u64;
        let elapsed = routine(iters);
        self.result = Some((elapsed, iters));
    }
}

fn report(name: &str, result: Option<(Duration, u64)>) {
    match result {
        Some((total, iters)) if iters > 0 => {
            let per = total.as_nanos() as f64 / iters as f64;
            println!("bench: {name:<50} {per:>14.1} ns/iter ({iters} iters)");
        }
        _ => println!("bench: {name:<50} (no measurement)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the sample count (accepted, ignored by the shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time for benchmarks in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measure_for = t;
        self
    }

    /// Sets the warm-up time (accepted, ignored by the shim).
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Sets throughput reporting (accepted, ignored by the shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            measure_for: self.criterion.measure_for,
            result: None,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.result);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            measure_for: self.criterion.measure_for,
            result: None,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.result);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Throughput annotation (accepted, ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            // Short by design: the shim is for smoke-level timing, and the
            // ~20 bench targets must finish in CI-compatible time.
            measure_for: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Overrides the per-benchmark measurement time.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measure_for = t;
        self
    }

    /// Accepted for compatibility (the shim has no sampling).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted for compatibility; CLI args are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            measure_for: self.measure_for,
            result: None,
        };
        f(&mut b);
        report(&id.to_string(), b.result);
        self
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut group = c.benchmark_group("tiny");
        group.sample_size(10).bench_function("add", |b| {
            b.iter(|| black_box(1u64) + black_box(2u64))
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        tiny(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(3u32) * 7));
    }
}
