//! Offline API-compatible shim for the `crossbeam-epoch` crate.
//!
//! The build container has no crates.io access, so this workspace ships a
//! minimal implementation of the `Atomic` / `Owned` / `Shared` / `Guard`
//! surface the FloDB crates use.
//!
//! **Reclamation policy:** unlike the earlier revision of this shim (which
//! leaked every deferred destruction), `defer_destroy` now feeds a real
//! epoch-based reclamation scheme, the same three-epoch design the real
//! crate uses:
//!
//! - A **global epoch** counter advances one step at a time.
//! - Every thread that calls [`pin`] registers a **participant** whose
//!   local epoch snapshot is published on each pin.
//! - Deferred destructions accumulate in a **per-thread garbage bag**;
//!   bags are *sealed* (stamped with the global epoch and pushed to a
//!   global queue) when they grow large, when a guard is
//!   [flushed](Guard::flush), or when the owning thread exits.
//! - The global epoch **advances** only when every currently pinned
//!   participant has observed the current epoch, and a sealed bag is
//!   **collected** (its destructors run) once the global epoch is at least
//!   **two** epochs past the bag's seal epoch.
//!
//! Why two epochs is enough: consider a reader holding a pointer that was
//! retired into a bag stamped with epoch `g`. If the reader pinned at
//! some epoch `e` *before* the unlink happened, then `e <= g` (the seal
//! reads the global epoch after the unlink, and the epoch never moves
//! backwards); while that reader stays pinned at `e`, the global epoch
//! cannot advance past `e + 1` — advancing from `e + 1` would require the
//! reader to have observed `e + 1` — and collection needs it to reach
//! `g + 2 >= e + 2`, which is unreachable until the reader unpins. A
//! reader that pins only *after* the seal cannot hold the pointer at all:
//! its pin and the seal both perform `SeqCst` accesses of the global
//! epoch, which order the unlinking swap before the late pinner's slot
//! loads, so those loads observe the replacement pointer.
//!
//! Divergences from the real crate that remain: no `Collector` /
//! `LocalHandle` API (everything goes through the default global
//! collector), coarse `SeqCst` ordering on the pin/advance paths instead
//! of the real crate's carefully minimized fences, and a mutex-protected
//! participant registry and garbage queue. The common-case `pin` takes
//! no lock, but a thread's *first* pin locks the registry to register,
//! and every `PINS_BETWEEN_COLLECT`-th pin runs an advancement/collection
//! attempt that locks both mutexes — so unlike the real crate, `pin` is
//! not lock-free in the technical sense. The extra [`shim_stats`] module
//! is a shim-only observability hook with no crossbeam equivalent.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::ptr;
use std::rc::Rc;
use std::sync::atomic::{fence, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A pointer type that can be stored into an [`Atomic`].
///
/// Implemented by [`Owned`] (transferring ownership) and [`Shared`]
/// (copying a borrowed pointer).
pub trait Pointer<T> {
    /// Returns the raw pointer, consuming `self` without dropping.
    fn into_ptr(self) -> *mut T;
    /// Reconstitutes the pointer type from a raw pointer.
    ///
    /// # Safety
    /// `raw` must have come from `into_ptr` of the same pointer type.
    unsafe fn from_ptr(raw: *mut T) -> Self;
}

/// An owned heap allocation that can be published into an [`Atomic`].
pub struct Owned<T> {
    raw: *mut T,
    _marker: PhantomData<Box<T>>,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    pub fn new(value: T) -> Self {
        Self {
            raw: Box::into_raw(Box::new(value)),
            _marker: PhantomData,
        }
    }

    /// Converts the owned pointer into a [`Shared`], leaking ownership to
    /// the data structure it is about to be published into.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            raw: self.into_ptr(),
            _marker: PhantomData,
        }
    }

    /// Converts into the inner box.
    pub fn into_box(self) -> Box<T> {
        // SAFETY: `raw` always points at a live Box allocation.
        unsafe { Box::from_raw(self.into_ptr()) }
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn into_ptr(self) -> *mut T {
        let raw = self.raw;
        std::mem::forget(self);
        raw
    }

    // SAFETY: per the `Pointer::from_ptr` contract, `raw` came from
    // `Owned::into_ptr`, so it is a live, uniquely-owned allocation.
    unsafe fn from_ptr(raw: *mut T) -> Self {
        Self {
            raw,
            _marker: PhantomData,
        }
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: `raw` points at a live Box allocation for the lifetime of
        // the `Owned`.
        unsafe { &*self.raw }
    }
}

impl<T> std::ops::DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: As in `deref`; `&mut self` guarantees exclusivity.
        unsafe { &mut *self.raw }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        // SAFETY: `raw` points at a live Box allocation we still own.
        unsafe { drop(Box::from_raw(self.raw)) };
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Owned").field(&**self).finish()
    }
}

impl<T> From<T> for Owned<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// A pointer borrowed from an [`Atomic`] under the protection of a
/// [`Guard`].
pub struct Shared<'g, T> {
    raw: *const T,
    _marker: PhantomData<&'g T>,
}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Self {
            raw: ptr::null(),
            _marker: PhantomData,
        }
    }

    /// Returns the raw pointer.
    pub fn as_raw(&self) -> *const T {
        self.raw
    }

    /// Whether the pointer is null.
    pub fn is_null(&self) -> bool {
        self.raw.is_null()
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    /// The pointee must be alive and no mutable reference to it may exist.
    pub unsafe fn deref(&self) -> &'g T {
        // SAFETY: Liveness and aliasing are the caller's contract above.
        unsafe { &*self.raw }
    }

    /// Converts to a reference, `None` when null.
    ///
    /// # Safety
    /// As for [`Shared::deref`].
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        // SAFETY: Liveness and aliasing are the caller's contract above.
        unsafe { self.raw.as_ref() }
    }

    /// Takes ownership of the pointee.
    ///
    /// # Safety
    /// The caller must hold the only remaining pointer to the allocation.
    pub unsafe fn into_owned(self) -> Owned<T> {
        // SAFETY: The caller vouches this is the last pointer (contract
        // above), satisfying `from_ptr`'s uniqueness requirement.
        unsafe { Owned::from_ptr(self.raw as *mut T) }
    }
}

impl<'g, T> Pointer<T> for Shared<'g, T> {
    fn into_ptr(self) -> *mut T {
        self.raw as *mut T
    }

    // SAFETY: per the `Pointer::from_ptr` contract, `raw` came from
    // `into_ptr`; `Shared` only copies the borrow — no ownership assumed.
    unsafe fn from_ptr(raw: *mut T) -> Self {
        Self {
            raw,
            _marker: PhantomData,
        }
    }
}

impl<'g, T> Clone for Shared<'g, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'g, T> Copy for Shared<'g, T> {}

impl<'g, T> PartialEq for Shared<'g, T> {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.raw, other.raw)
    }
}

impl<'g, T> Eq for Shared<'g, T> {}

impl<'g, T> From<*const T> for Shared<'g, T> {
    fn from(raw: *const T) -> Self {
        Self {
            raw,
            _marker: PhantomData,
        }
    }
}

impl<'g, T> Default for Shared<'g, T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<'g, T> std::fmt::Debug for Shared<'g, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Shared").field(&self.raw).finish()
    }
}

/// The error returned by a failed [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the atomic actually held.
    pub current: Shared<'g, T>,
    /// The not-installed new value, handed back to the caller.
    pub new: P,
}

/// An atomic pointer cell that epoch guards can safely load from.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
    _marker: PhantomData<*mut T>,
}

// SAFETY: `Atomic` is a plain atomic pointer; cross-thread transfer of the
// pointee is governed by the same rules as crossbeam's `Atomic`.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: See above.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// The null pointer.
    pub fn null() -> Self {
        Self {
            ptr: AtomicPtr::new(ptr::null_mut()),
            _marker: PhantomData,
        }
    }

    /// Allocates `value` and stores a pointer to it.
    pub fn new(value: T) -> Self {
        Self::from(Owned::new(value))
    }

    /// Loads the pointer.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            raw: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    /// Stores `new`, dropping nothing (any displaced pointer is simply
    /// overwritten, as in crossbeam).
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.ptr.store(new.into_ptr(), ord);
    }

    /// Swaps in `new`, returning the previous pointer.
    pub fn swap<'g, P: Pointer<T>>(&self, new: P, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            raw: self.ptr.swap(new.into_ptr(), ord),
            _marker: PhantomData,
        }
    }

    /// Compare-and-exchanges `current` for `new`.
    ///
    /// On success returns the now-installed pointer as a [`Shared`]; on
    /// failure returns the observed pointer and hands `new` back.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'g, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_raw = new.into_ptr();
        match self.ptr.compare_exchange(
            current.raw as *mut T,
            new_raw,
            success,
            failure,
        ) {
            Ok(_) => Ok(Shared {
                raw: new_raw,
                _marker: PhantomData,
            }),
            Err(observed) => Err(CompareExchangeError {
                current: Shared {
                    raw: observed,
                    _marker: PhantomData,
                },
                // SAFETY: `new_raw` came from `new.into_ptr()` above.
                new: unsafe { P::from_ptr(new_raw) },
            }),
        }
    }

    /// Takes ownership of the pointee.
    ///
    /// # Safety
    /// The caller must have exclusive access and the pointer must be
    /// non-null.
    pub unsafe fn into_owned(self) -> Owned<T> {
        // SAFETY: Exclusive access and non-null are the caller's contract
        // above, satisfying `from_ptr`'s uniqueness requirement.
        unsafe { Owned::from_ptr(self.ptr.into_inner()) }
    }
}

impl<T> From<Owned<T>> for Atomic<T> {
    fn from(owned: Owned<T>) -> Self {
        Self {
            ptr: AtomicPtr::new(owned.into_ptr()),
            _marker: PhantomData,
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> std::fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Atomic")
            .field(&self.ptr.load(Ordering::Relaxed))
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Epoch-based reclamation internals.
// ---------------------------------------------------------------------------

/// Low bit of a participant's published state: set while pinned. The
/// remaining bits hold the epoch the participant observed when it pinned.
const PINNED: usize = 1;
const EPOCH_SHIFT: u32 = 1;

/// Seal a thread's local bag once it holds this many deferred items, even
/// if the thread never flushes explicitly.
const BAG_SEAL_THRESHOLD: usize = 64;

/// Attempt epoch advancement + collection every this many pins (amortizes
/// the registry scan over the hot path).
const PINS_BETWEEN_COLLECT: usize = 64;

/// A type-erased deferred destruction.
///
/// The closure typically captures a raw pointer and may run on whichever
/// thread performs the collection, so it is force-marked `Send`; the
/// `defer_*` safety contracts make the caller responsible for that being
/// sound (as in the real crate, where collection also migrates garbage
/// across threads).
struct Deferred {
    call: Box<dyn FnOnce()>,
}

// SAFETY: See the `Deferred` doc comment — soundness of cross-thread
// execution is part of the `defer_unchecked`/`defer_destroy` contract.
unsafe impl Send for Deferred {}

impl Deferred {
    /// # Safety
    /// The closure must remain sound to call until the end of the grace
    /// period (the `defer_unchecked` contract); its captured borrows are
    /// lifetime-erased here.
    unsafe fn new<F: FnOnce()>(f: F) -> Self {
        let boxed: Box<dyn FnOnce() + '_> = Box::new(f);
        Self {
            // SAFETY: Only the lifetime is transmuted; the caller vouches
            // for the closure staying valid until it runs.
            call: unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + '_>, Box<dyn FnOnce() + 'static>>(boxed)
            },
        }
    }

    fn run(self) {
        (self.call)();
    }
}

/// A bag of deferred destructions stamped with the global epoch at the
/// moment it was sealed. Safe to collect once the global epoch has
/// advanced two steps past `epoch`.
struct SealedBag {
    epoch: usize,
    items: Vec<Deferred>,
}

/// A participant's shared slot in the global registry.
///
/// Only `state` is shared; everything else about a thread lives in its
/// [`Local`]. `state` is `(epoch << 1) | PINNED` while the thread is
/// pinned and `0` while it is not.
struct Participant {
    state: AtomicUsize,
}

/// The process-wide collector state.
struct Global {
    /// The global epoch. Monotonically increasing; bags are stamped with
    /// it and participants publish it (shifted) into their `state`.
    epoch: AtomicUsize,
    /// Every registered participant. Mutated only on thread start/exit.
    participants: Mutex<Vec<Arc<Participant>>>,
    /// Sealed bags awaiting their grace period.
    garbage: Mutex<Vec<SealedBag>>,
    /// Total destructions handed to `defer_destroy`/`defer_unchecked`.
    deferred: AtomicU64,
    /// Total deferred destructions actually executed.
    executed: AtomicU64,
}

static GLOBAL: Global = Global {
    epoch: AtomicUsize::new(0),
    participants: Mutex::new(Vec::new()),
    garbage: Mutex::new(Vec::new()),
    deferred: AtomicU64::new(0),
    executed: AtomicU64::new(0),
};

impl Global {
    /// Tries to advance the global epoch by one step.
    ///
    /// Succeeds only when every pinned participant has observed the
    /// current epoch; a straggler pinned in an older epoch may still hold
    /// pointers retired up to one epoch ago, so the epoch must wait for
    /// it.
    fn try_advance(&self) -> bool {
        let epoch = self.epoch.load(Ordering::SeqCst);
        fence(Ordering::SeqCst);
        {
            let participants = self.participants.lock().unwrap();
            for p in participants.iter() {
                let state = p.state.load(Ordering::SeqCst);
                if state & PINNED == PINNED && state >> EPOCH_SHIFT != epoch {
                    return false;
                }
            }
        }
        fence(Ordering::SeqCst);
        self.epoch
            .compare_exchange(
                epoch,
                epoch.wrapping_add(1),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    /// Runs the destructors of every sealed bag whose grace period has
    /// elapsed (global epoch at least two past the seal epoch).
    ///
    /// Destructors run *after* the garbage lock is released: they are
    /// arbitrary user code (they may pin, or defer more garbage).
    fn collect(&self) {
        let ready: Vec<SealedBag> = {
            let mut garbage = self.garbage.lock().unwrap();
            // The epoch snapshot must be taken *after* acquiring the
            // garbage lock. Every queued bag loaded its stamp before it was
            // pushed (and thus before we got the lock), and the epoch is
            // monotonic, so `bag.epoch <= epoch` holds for everything we
            // examine and the unsigned age below cannot underflow. Loading
            // the epoch first would race a concurrent advance + seal: a bag
            // stamped `snapshot + 1` would wrap to an age of `usize::MAX`
            // and be collected with zero grace period.
            let epoch = self.epoch.load(Ordering::SeqCst);
            let mut ready = Vec::new();
            let mut i = 0;
            while i < garbage.len() {
                let age = epoch.wrapping_sub(garbage[i].epoch);
                debug_assert!(age < usize::MAX / 2, "bag stamped ahead of the epoch");
                if age >= 2 {
                    ready.push(garbage.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            ready
        };
        for bag in ready {
            let n = bag.items.len() as u64;
            for item in bag.items {
                item.run();
            }
            self.executed.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Seals `items` under the current global epoch.
    fn push_bag(&self, items: Vec<Deferred>) {
        if items.is_empty() {
            return;
        }
        // The stamp is read *after* every unlink that produced these items
        // (program order on the sealing thread), so it is an upper bound on
        // the epoch any still-pinned reader of them observed. See the
        // crate-level safety argument.
        let epoch = self.epoch.load(Ordering::SeqCst);
        self.garbage.lock().unwrap().push(SealedBag { epoch, items });
    }
}

/// Per-thread participant state, reached through a `thread_local` `Rc`.
///
/// Guards also hold the `Rc`, so a guard that outlives the thread-local
/// slot (e.g. dropped late during thread teardown) keeps the `Local`
/// alive; the `Local` unregisters itself only once the last reference is
/// gone.
struct Local {
    participant: Arc<Participant>,
    /// Nesting depth of live guards on this thread.
    guard_count: Cell<usize>,
    /// Total pins, used to amortize advancement attempts.
    pin_count: Cell<usize>,
    /// The open garbage bag for this thread.
    bag: RefCell<Vec<Deferred>>,
}

impl Local {
    /// Publishes the freshest global epoch into the participant state.
    /// Must only be called when the thread holds no epoch-protected
    /// pointers (on first pin, or on an explicit `repin`).
    fn acquire_epoch(&self) {
        let mut epoch = GLOBAL.epoch.load(Ordering::SeqCst);
        loop {
            self.participant
                .state
                .store((epoch << EPOCH_SHIFT) | PINNED, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            // If the global epoch moved between the load and the store we
            // would be pinned in the past and needlessly stall advancement;
            // chase it (we hold no protected pointers yet, so moving our
            // snapshot forward is safe).
            let current = GLOBAL.epoch.load(Ordering::SeqCst);
            if current == epoch {
                break;
            }
            epoch = current;
        }
    }

    fn pin(&self) {
        let count = self.guard_count.get();
        self.guard_count.set(count + 1);
        if count == 0 {
            self.acquire_epoch();
            let pins = self.pin_count.get().wrapping_add(1);
            self.pin_count.set(pins);
            if pins.is_multiple_of(PINS_BETWEEN_COLLECT) {
                // Seal even a partial bag: a thread that keeps pinning but
                // never defers again (e.g. switched to read-only traffic)
                // would otherwise hold its garbage un-collectable forever —
                // only the owning thread can seal its bag.
                if !self.bag.borrow().is_empty() {
                    self.seal_bag();
                }
                GLOBAL.try_advance();
                GLOBAL.collect();
            }
        }
    }

    fn unpin(&self) {
        let count = self.guard_count.get();
        debug_assert!(count > 0, "unpin without matching pin");
        self.guard_count.set(count - 1);
        if count == 1 {
            self.participant.state.store(0, Ordering::SeqCst);
        }
    }

    /// Adds one deferred destruction to the open bag, sealing it when it
    /// reaches the size threshold.
    fn defer(&self, deferred: Deferred) {
        GLOBAL.deferred.fetch_add(1, Ordering::Relaxed);
        let len = {
            let mut bag = self.bag.borrow_mut();
            bag.push(deferred);
            bag.len()
        };
        if len >= BAG_SEAL_THRESHOLD {
            self.seal_bag();
        }
    }

    /// Moves the open bag into the global garbage queue, stamped with the
    /// current global epoch.
    fn seal_bag(&self) {
        let items = std::mem::take(&mut *self.bag.borrow_mut());
        GLOBAL.push_bag(items);
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        // Thread exit: hand any remaining garbage to the global queue so
        // it is eventually collected by surviving threads, and unregister
        // so a dead thread can never stall epoch advancement.
        self.seal_bag();
        let mut participants = GLOBAL.participants.lock().unwrap();
        participants.retain(|p| !Arc::ptr_eq(p, &self.participant));
    }
}

thread_local! {
    static LOCAL: Rc<Local> = {
        let participant = Arc::new(Participant {
            state: AtomicUsize::new(0),
        });
        GLOBAL
            .participants
            .lock()
            .unwrap()
            .push(Arc::clone(&participant));
        Rc::new(Local {
            participant,
            guard_count: Cell::new(0),
            pin_count: Cell::new(0),
            bag: RefCell::new(Vec::new()),
        })
    };
}

/// A pinned participant handle.
///
/// While a `Guard` is alive its thread is *pinned*: the global epoch can
/// advance at most one step, so every pointer loaded through this guard
/// stays allocated even if it is concurrently unlinked and passed to
/// [`Guard::defer_destroy`]. Dropping the last guard on a thread unpins
/// it.
pub struct Guard {
    /// `None` marks the [`unprotected`] guard, which defers nothing and
    /// executes deferred destructions immediately.
    local: Option<Rc<Local>>,
}

impl Guard {
    /// Defers destruction of the heap allocation behind `ptr` until a
    /// grace period has elapsed (no thread that was pinned at the time of
    /// this call remains pinned).
    ///
    /// # Safety
    /// `ptr` must have been unlinked from the data structure so that no
    /// *new* reader can acquire it, it must not be passed to
    /// `defer_destroy` twice, and it must point at a live `Box`-allocated
    /// `T` (same contract as crossbeam).
    ///
    /// # Examples
    ///
    /// Correct retire-vs-read usage: readers hold a guard across load and
    /// dereference; writers unlink with a CAS/swap *first* and only then
    /// retire the displaced pointer through the same guard.
    ///
    /// ```
    /// use std::sync::atomic::Ordering;
    /// use crossbeam_epoch::{self as epoch, Atomic, Owned};
    ///
    /// let cell = Atomic::new(1u64);
    ///
    /// // Reader: pin, load, deref — all under one guard.
    /// let guard = epoch::pin();
    /// let snapshot = cell.load(Ordering::Acquire, &guard);
    /// assert_eq!(unsafe { *snapshot.deref() }, 1);
    ///
    /// // Writer (possibly another thread): replace, then retire the old
    /// // value. The reader above may still hold `snapshot`, so the old
    /// // allocation must not be freed before a grace period passes.
    /// let writer_guard = epoch::pin();
    /// let old = cell.swap(Owned::new(2u64), Ordering::AcqRel, &writer_guard);
    /// unsafe { writer_guard.defer_destroy(old) };
    ///
    /// // `snapshot` stays valid while `guard` lives, even though the
    /// // pointer it came from has been replaced and retired.
    /// assert_eq!(unsafe { *snapshot.deref() }, 1);
    /// drop(guard);
    /// drop(writer_guard);
    ///
    /// // Cleanup for the example: free the current cell contents.
    /// drop(unsafe { cell.into_owned() });
    /// ```
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        let raw = ptr.as_raw() as *mut T;
        if raw.is_null() {
            return;
        }
        // SAFETY: `defer_destroy`'s contract (the pointee is unreachable
        // to new readers) is exactly `defer_unchecked`'s; `raw` came from
        // `Owned::new`'s `Box`, so reconstituting it at drop time is sound.
        unsafe { self.defer_unchecked(move || drop(Box::from_raw(raw))) };
    }

    /// Defers execution of `f` until a grace period has elapsed. On the
    /// [`unprotected`] guard `f` runs immediately.
    ///
    /// # Safety
    /// `f` must remain sound to call on any thread after every participant
    /// pinned at the time of this call has unpinned (same contract as
    /// crossbeam's `Guard::defer_unchecked`).
    pub unsafe fn defer_unchecked<F: FnOnce()>(&self, f: F) {
        match &self.local {
            // SAFETY: `Deferred::new` erases `f`'s lifetime; our own
            // contract above guarantees `f` stays sound until it runs.
            Some(local) => local.defer(unsafe { Deferred::new(f) }),
            None => {
                // Unprotected: by contract the caller has exclusive access,
                // so there is no grace period to wait for.
                GLOBAL.deferred.fetch_add(1, Ordering::Relaxed);
                f();
                GLOBAL.executed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Seals this thread's garbage bag and attempts one round of epoch
    /// advancement and collection.
    ///
    /// One call does not guarantee the bag is freed: the calling thread's
    /// own pin caps advancement, so full convergence at quiescence takes a
    /// few `pin` + `flush` rounds (see [`shim_stats`]).
    pub fn flush(&self) {
        if let Some(local) = &self.local {
            local.seal_bag();
            GLOBAL.try_advance();
            GLOBAL.collect();
        }
    }

    /// Unpins and immediately repins the thread, letting the epoch
    /// advance past it. Any `Shared` previously loaded through this guard
    /// must not be used afterwards (enforced by `&mut self` borrowing the
    /// guard's lifetime).
    pub fn repin(&mut self) {
        if let Some(local) = &self.local {
            if local.guard_count.get() == 1 {
                local.participant.state.store(0, Ordering::SeqCst);
                local.acquire_epoch();
            }
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if let Some(local) = &self.local {
            local.unpin();
        }
    }
}

/// Pins the current thread, returning a guard.
///
/// See [`Guard::defer_destroy`] for a worked retire-vs-read example.
pub fn pin() -> Guard {
    let local = LOCAL.with(Rc::clone);
    local.pin();
    Guard { local: Some(local) }
}

/// Returns a guard usable without pinning.
///
/// Deferred destructions through this guard run immediately instead of
/// waiting for a grace period.
///
/// # Safety
/// The caller must guarantee no concurrent access to the data structures
/// traversed with this guard (typically because it holds `&mut self`).
pub unsafe fn unprotected() -> &'static Guard {
    // `Guard` itself is deliberately neither `Send` nor `Sync` (it wraps
    // thread-local state); only this particular guard, whose `local` is
    // `None` and which therefore touches no thread-local state, may be
    // shared. Wrap it instead of weakening `Guard`, as the real crate does.
    struct UnprotectedGuard(Guard);
    // SAFETY: `local: None` means every method is a pure function or a
    // no-op on shared state guarded by its own synchronization.
    unsafe impl Sync for UnprotectedGuard {}
    static UNPROTECTED: UnprotectedGuard = UnprotectedGuard(Guard { local: None });
    &UNPROTECTED.0
}

/// Shim-only observability counters (no crossbeam equivalent).
///
/// These are process-global, monotonically increasing totals across every
/// thread and every epoch-managed structure. At quiescence — all guards
/// dropped, bags flushed, and a few `pin()` + [`Guard::flush`] rounds to
/// walk the epoch forward — `destructions_executed` converges to
/// `destructions_deferred`.
pub mod shim_stats {
    use std::sync::atomic::Ordering;

    /// Total destructions handed to `defer_destroy` / `defer_unchecked`.
    pub fn destructions_deferred() -> u64 {
        super::GLOBAL.deferred.load(Ordering::Relaxed)
    }

    /// Total deferred destructions whose destructor has run.
    pub fn destructions_executed() -> u64 {
        super::GLOBAL.executed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    use super::*;

    #[test]
    fn publish_load_roundtrip() {
        let a = Atomic::new(41u64);
        let guard = pin();
        let s = a.load(Ordering::Acquire, &guard);
        assert_eq!(unsafe { *s.deref() }, 41); // SAFETY: loaded under the live pin.
        drop(guard);
        drop(unsafe { a.into_owned() }); // SAFETY: test is sole owner, no guards left.
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let a: Atomic<u64> = Atomic::null();
        let guard = pin();
        let null = a.load(Ordering::Acquire, &guard);
        assert!(null.is_null());

        let won =
            a.compare_exchange(null, Owned::new(7), Ordering::SeqCst, Ordering::Acquire, &guard);
        let installed = match won {
            Ok(s) => s,
            Err(_) => panic!("CAS from null must win"),
        };
        assert_eq!(unsafe { *installed.deref() }, 7); // SAFETY: loaded under the live pin.

        let lost =
            a.compare_exchange(null, Owned::new(8), Ordering::SeqCst, Ordering::Acquire, &guard);
        let err = match lost {
            Err(e) => e,
            Ok(_) => panic!("CAS from stale expected must fail"),
        };
        assert_eq!(unsafe { *err.current.deref() }, 7); // SAFETY: loaded under the live pin.
        assert_eq!(*err.new, 8); // ownership handed back
        drop(guard);
        drop(unsafe { a.into_owned() }); // SAFETY: test is sole owner, no guards left.
    }

    #[test]
    fn swap_returns_previous() {
        let a = Atomic::new(1u32);
        let guard = pin();
        let prev = a.swap(Owned::new(2), Ordering::AcqRel, &guard);
        assert_eq!(unsafe { *prev.deref() }, 1); // SAFETY: loaded under the live pin.
        // SAFETY: `prev` was unpublished by the swap; defer covers readers.
        unsafe { guard.defer_destroy(prev) };
        drop(guard);
        drop(unsafe { a.into_owned() }); // SAFETY: test is sole owner, no guards left.
    }

    /// A value whose drop is observable through a shared counter.
    struct Sentinel(Arc<AtomicUsize>);

    impl Drop for Sentinel {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Pumps pin+flush rounds until `drops` reaches `expect` (each round
    /// can advance the epoch one step past the pumping thread's pin).
    fn pump_until(drops: &AtomicUsize, expect: usize) {
        for _ in 0..256 {
            if drops.load(Ordering::SeqCst) >= expect {
                break;
            }
            let guard = pin();
            guard.flush();
            drop(guard);
            // Other tests in this process may briefly hold pins that stall
            // advancement; give them time to unpin.
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    #[test]
    fn deferred_destruction_actually_runs() {
        let drops = Arc::new(AtomicUsize::new(0));
        let guard = pin();
        for _ in 0..10 {
            let owned = Owned::new(Sentinel(Arc::clone(&drops)));
            let shared = owned.into_shared(&guard);
            // SAFETY: never published; we hold the only pointer.
            unsafe { guard.defer_destroy(shared) };
        }
        // Still pinned: our own pin caps the epoch, nothing freed yet that
        // could be in a bag sealed at the current epoch.
        drop(guard);
        pump_until(&drops, 10);
        assert_eq!(drops.load(Ordering::SeqCst), 10, "retired values must be freed");
    }

    #[test]
    fn destruction_waits_for_concurrent_reader() {
        use std::sync::mpsc;

        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(Atomic::new(Sentinel(Arc::clone(&drops))));

        let (reader_ready_tx, reader_ready_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let reader = {
            let cell = Arc::clone(&cell);
            let drops = Arc::clone(&drops);
            std::thread::spawn(move || {
                let guard = pin();
                let s = cell.load(Ordering::Acquire, &guard);
                reader_ready_tx.send(()).unwrap();
                release_rx.recv().unwrap();
                // The writer has retired this value and pumped the epoch,
                // but our pin must have kept it alive.
                assert_eq!(drops.load(Ordering::SeqCst), 0);
                // SAFETY: protected by `guard` the whole time.
                let _still_alive: &Sentinel = unsafe { s.deref() };
                drop(guard);
            })
        };

        reader_ready_rx.recv().unwrap();
        // Replace and retire the value the reader is holding.
        {
            let guard = pin();
            let old = cell.swap(
                Owned::new(Sentinel(Arc::clone(&drops))),
                Ordering::AcqRel,
                &guard,
            );
            // SAFETY: `old` was unpublished by the swap; defer covers readers.
            unsafe { guard.defer_destroy(old) };
            guard.flush();
            drop(guard);
        }
        // Pump hard: the pinned reader must hold the epoch back.
        for _ in 0..16 {
            let guard = pin();
            guard.flush();
            drop(guard);
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0, "freed under a live reader pin");
        release_tx.send(()).unwrap();
        reader.join().unwrap();
        pump_until(&drops, 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        // SAFETY: the reader joined; this thread is the sole owner.
        drop(unsafe { Arc::try_unwrap(cell).ok().unwrap().into_owned() });
    }

    #[test]
    fn thread_exit_hands_garbage_over() {
        let drops = Arc::new(AtomicUsize::new(0));
        let n = 25usize;
        {
            let drops = Arc::clone(&drops);
            std::thread::spawn(move || {
                let guard = pin();
                for _ in 0..n {
                    let shared = Owned::new(Sentinel(Arc::clone(&drops))).into_shared(&guard);
                    // SAFETY: never published.
                    unsafe { guard.defer_destroy(shared) };
                }
                drop(guard);
                // No flush: the thread-local destructor must seal the bag.
            })
            .join()
            .unwrap();
        }
        pump_until(&drops, n);
        assert_eq!(drops.load(Ordering::SeqCst), n);
    }

    #[test]
    fn unprotected_defer_runs_immediately() {
        let drops = Arc::new(AtomicUsize::new(0));
        // SAFETY: single-threaded test; exclusive access.
        let guard = unsafe { unprotected() };
        let shared = Owned::new(Sentinel(Arc::clone(&drops))).into_shared(guard);
        // SAFETY: we hold the only pointer.
        unsafe { guard.defer_destroy(shared) };
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn repin_lets_epoch_advance() {
        let drops = Arc::new(AtomicUsize::new(0));
        let mut guard = pin();
        let shared = Owned::new(Sentinel(Arc::clone(&drops))).into_shared(&guard);
        // SAFETY: never published.
        unsafe { guard.defer_destroy(shared) };
        guard.flush();
        // Retry with sleeps, as in `pump_until`: sibling tests in this
        // binary may briefly hold pins that stall epoch advancement.
        for _ in 0..256 {
            if drops.load(Ordering::SeqCst) >= 1 {
                break;
            }
            guard.repin();
            guard.flush();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1, "repin must release the epoch");
        drop(guard);
    }
}
