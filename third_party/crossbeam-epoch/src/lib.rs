//! Offline API-compatible shim for the `crossbeam-epoch` crate.
//!
//! The build container has no crates.io access, so this workspace ships a
//! minimal implementation of the `Atomic` / `Owned` / `Shared` / `Guard`
//! surface the FloDB crates use.
//!
//! **Reclamation policy:** `Guard::defer_destroy` intentionally *leaks* the
//! deferred object instead of freeing it after a grace period. Leaking is
//! always sound (no use-after-free is possible), and the only values routed
//! through `defer_destroy` in this workspace are small replaced versions on
//! in-place updates. Structures still free their *current* contents in
//! `Drop` via `unprotected()`. Replacing this shim with real epoch-based
//! reclamation is tracked in ROADMAP.md.

use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

/// A pointer type that can be stored into an [`Atomic`].
///
/// Implemented by [`Owned`] (transferring ownership) and [`Shared`]
/// (copying a borrowed pointer).
pub trait Pointer<T> {
    /// Returns the raw pointer, consuming `self` without dropping.
    fn into_ptr(self) -> *mut T;
    /// Reconstitutes the pointer type from a raw pointer.
    ///
    /// # Safety
    /// `raw` must have come from `into_ptr` of the same pointer type.
    unsafe fn from_ptr(raw: *mut T) -> Self;
}

/// An owned heap allocation that can be published into an [`Atomic`].
pub struct Owned<T> {
    raw: *mut T,
    _marker: PhantomData<Box<T>>,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    pub fn new(value: T) -> Self {
        Self {
            raw: Box::into_raw(Box::new(value)),
            _marker: PhantomData,
        }
    }

    /// Converts the owned pointer into a [`Shared`], leaking ownership to
    /// the data structure it is about to be published into.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            raw: self.into_ptr(),
            _marker: PhantomData,
        }
    }

    /// Converts into the inner box.
    pub fn into_box(self) -> Box<T> {
        // SAFETY: `raw` always points at a live Box allocation.
        unsafe { Box::from_raw(self.into_ptr()) }
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn into_ptr(self) -> *mut T {
        let raw = self.raw;
        std::mem::forget(self);
        raw
    }

    unsafe fn from_ptr(raw: *mut T) -> Self {
        Self {
            raw,
            _marker: PhantomData,
        }
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: `raw` points at a live Box allocation for the lifetime of
        // the `Owned`.
        unsafe { &*self.raw }
    }
}

impl<T> std::ops::DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: As in `deref`; `&mut self` guarantees exclusivity.
        unsafe { &mut *self.raw }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        // SAFETY: `raw` points at a live Box allocation we still own.
        unsafe { drop(Box::from_raw(self.raw)) };
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Owned").field(&**self).finish()
    }
}

impl<T> From<T> for Owned<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// A pointer borrowed from an [`Atomic`] under the protection of a
/// [`Guard`].
pub struct Shared<'g, T> {
    raw: *const T,
    _marker: PhantomData<&'g T>,
}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Self {
            raw: ptr::null(),
            _marker: PhantomData,
        }
    }

    /// Returns the raw pointer.
    pub fn as_raw(&self) -> *const T {
        self.raw
    }

    /// Whether the pointer is null.
    pub fn is_null(&self) -> bool {
        self.raw.is_null()
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    /// The pointee must be alive and no mutable reference to it may exist.
    pub unsafe fn deref(&self) -> &'g T {
        &*self.raw
    }

    /// Converts to a reference, `None` when null.
    ///
    /// # Safety
    /// As for [`Shared::deref`].
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        self.raw.as_ref()
    }

    /// Takes ownership of the pointee.
    ///
    /// # Safety
    /// The caller must hold the only remaining pointer to the allocation.
    pub unsafe fn into_owned(self) -> Owned<T> {
        Owned::from_ptr(self.raw as *mut T)
    }
}

impl<'g, T> Pointer<T> for Shared<'g, T> {
    fn into_ptr(self) -> *mut T {
        self.raw as *mut T
    }

    unsafe fn from_ptr(raw: *mut T) -> Self {
        Self {
            raw,
            _marker: PhantomData,
        }
    }
}

impl<'g, T> Clone for Shared<'g, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'g, T> Copy for Shared<'g, T> {}

impl<'g, T> PartialEq for Shared<'g, T> {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.raw, other.raw)
    }
}

impl<'g, T> Eq for Shared<'g, T> {}

impl<'g, T> From<*const T> for Shared<'g, T> {
    fn from(raw: *const T) -> Self {
        Self {
            raw,
            _marker: PhantomData,
        }
    }
}

impl<'g, T> Default for Shared<'g, T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<'g, T> std::fmt::Debug for Shared<'g, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Shared").field(&self.raw).finish()
    }
}

/// The error returned by a failed [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the atomic actually held.
    pub current: Shared<'g, T>,
    /// The not-installed new value, handed back to the caller.
    pub new: P,
}

/// An atomic pointer cell that epoch guards can safely load from.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
    _marker: PhantomData<*mut T>,
}

// SAFETY: `Atomic` is a plain atomic pointer; cross-thread transfer of the
// pointee is governed by the same rules as crossbeam's `Atomic`.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: See above.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// The null pointer.
    pub fn null() -> Self {
        Self {
            ptr: AtomicPtr::new(ptr::null_mut()),
            _marker: PhantomData,
        }
    }

    /// Allocates `value` and stores a pointer to it.
    pub fn new(value: T) -> Self {
        Self::from(Owned::new(value))
    }

    /// Loads the pointer.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            raw: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    /// Stores `new`, dropping nothing (any displaced pointer is simply
    /// overwritten, as in crossbeam).
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.ptr.store(new.into_ptr(), ord);
    }

    /// Swaps in `new`, returning the previous pointer.
    pub fn swap<'g, P: Pointer<T>>(&self, new: P, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            raw: self.ptr.swap(new.into_ptr(), ord),
            _marker: PhantomData,
        }
    }

    /// Compare-and-exchanges `current` for `new`.
    ///
    /// On success returns the now-installed pointer as a [`Shared`]; on
    /// failure returns the observed pointer and hands `new` back.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'g, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_raw = new.into_ptr();
        match self.ptr.compare_exchange(
            current.raw as *mut T,
            new_raw,
            success,
            failure,
        ) {
            Ok(_) => Ok(Shared {
                raw: new_raw,
                _marker: PhantomData,
            }),
            Err(observed) => Err(CompareExchangeError {
                current: Shared {
                    raw: observed,
                    _marker: PhantomData,
                },
                // SAFETY: `new_raw` came from `new.into_ptr()` above.
                new: unsafe { P::from_ptr(new_raw) },
            }),
        }
    }

    /// Takes ownership of the pointee.
    ///
    /// # Safety
    /// The caller must have exclusive access and the pointer must be
    /// non-null.
    pub unsafe fn into_owned(self) -> Owned<T> {
        Owned::from_ptr(self.ptr.into_inner())
    }
}

impl<T> From<Owned<T>> for Atomic<T> {
    fn from(owned: Owned<T>) -> Self {
        Self {
            ptr: AtomicPtr::new(owned.into_ptr()),
            _marker: PhantomData,
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> std::fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Atomic")
            .field(&self.ptr.load(Ordering::Relaxed))
            .finish()
    }
}

/// A pinned participant handle.
///
/// In this shim pinning is a no-op: deferred destructions leak (sound, see
/// the crate docs), so no epoch tracking is required.
pub struct Guard {
    _not_send: PhantomData<*mut ()>,
}

impl Guard {
    /// Defers destruction of `ptr`.
    ///
    /// This shim leaks the allocation instead of freeing it after a grace
    /// period — always sound, never a use-after-free.
    ///
    /// # Safety
    /// `ptr` must be unreachable to new readers (same contract as
    /// crossbeam).
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        let _ = ptr;
    }

    /// Runs `f` after a grace period in crossbeam; this shim never runs
    /// it at all (matching `defer_destroy`'s leak policy). Running it
    /// eagerly — or dropping it, which runs captured destructors — could
    /// free memory that concurrently pinned readers still reference.
    ///
    /// # Safety
    /// Same contract as crossbeam's `Guard::defer_unchecked`.
    pub unsafe fn defer_unchecked<F: FnOnce()>(&self, f: F) {
        std::mem::forget(f);
    }

    /// Flushes pending deferred functions (no-op here).
    pub fn flush(&self) {}

    /// Repins the guard (no-op here).
    pub fn repin(&mut self) {}
}

/// Pins the current thread, returning a guard.
pub fn pin() -> Guard {
    Guard {
        _not_send: PhantomData,
    }
}

/// Returns a guard usable without pinning.
///
/// # Safety
/// The caller must guarantee no concurrent access to the data structures
/// traversed with this guard (typically because it holds `&mut self`).
pub unsafe fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard {
        _not_send: PhantomData,
    };
    &UNPROTECTED
}

// SAFETY: `Guard` carries no data; the `*mut ()` marker only suppresses
// auto-Send/Sync the way crossbeam's Guard does. The static `unprotected`
// guard needs Sync; a zero-sized immutable value is trivially shareable.
unsafe impl Sync for Guard {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_load_roundtrip() {
        let a = Atomic::new(41u64);
        let guard = pin();
        let s = a.load(Ordering::Acquire, &guard);
        assert_eq!(unsafe { *s.deref() }, 41);
        drop(unsafe { a.into_owned() });
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let a: Atomic<u64> = Atomic::null();
        let guard = pin();
        let null = a.load(Ordering::Acquire, &guard);
        assert!(null.is_null());

        let won =
            a.compare_exchange(null, Owned::new(7), Ordering::SeqCst, Ordering::Acquire, &guard);
        let installed = match won {
            Ok(s) => s,
            Err(_) => panic!("CAS from null must win"),
        };
        assert_eq!(unsafe { *installed.deref() }, 7);

        let lost =
            a.compare_exchange(null, Owned::new(8), Ordering::SeqCst, Ordering::Acquire, &guard);
        let err = match lost {
            Err(e) => e,
            Ok(_) => panic!("CAS from stale expected must fail"),
        };
        assert_eq!(unsafe { *err.current.deref() }, 7);
        assert_eq!(*err.new, 8); // ownership handed back
        drop(unsafe { a.into_owned() });
    }

    #[test]
    fn swap_returns_previous() {
        let a = Atomic::new(1u32);
        let guard = pin();
        let prev = a.swap(Owned::new(2), Ordering::AcqRel, &guard);
        assert_eq!(unsafe { *prev.deref() }, 1);
        drop(unsafe { prev.into_owned() });
        drop(unsafe { a.into_owned() });
    }
}
