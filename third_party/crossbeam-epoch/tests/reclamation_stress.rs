//! Cross-thread reclamation stress for the epoch shim.
//!
//! N writer threads churn replace + delete over a shared, overlapping set
//! of atomic cells while reader threads hold guards across dereferences.
//! Every allocation is a drop-counting sentinel carrying a magic payload,
//! so the test detects three distinct failures:
//!
//! - **use-after-free**: a reader dereferencing a freed-and-poisoned
//!   sentinel sees a clobbered magic word (definitive under miri/ASan,
//!   best-effort otherwise);
//! - **double-free**: executed destructions would exceed deferrals and the
//!   poison check in `Drop` would trip;
//! - **a leak** (the old shim's policy): after all threads unpin and a few
//!   final `pin()` + `flush()` rounds, executed destructions must *equal*
//!   deferred destructions and every sentinel must have dropped.
//!
//! This file deliberately contains a single `#[test]`: the shim's
//! deferred/executed counters are process-global, and an integration test
//! binary is its own process, so the equality assertion cannot race with
//! unrelated tests.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, shim_stats, Atomic, Owned};

const MAGIC: u64 = 0xF10D_B5_EE_C1A1_07;
const POISON: u64 = 0xDEAD_DEAD_DEAD_DEAD;

/// Iteration counts are scaled down under miri, which executes ~1000x
/// slower; the interleavings it explores don't need bulk.
const WRITER_ROUNDS: usize = if cfg!(miri) { 64 } else { 4096 };
const CELLS: usize = if cfg!(miri) { 8 } else { 64 };
const WRITERS: usize = 4;
const READERS: usize = 2;

struct Sentinel {
    magic: AtomicU64,
    drops: Arc<AtomicUsize>,
}

impl Sentinel {
    fn new(drops: &Arc<AtomicUsize>, allocs: &AtomicUsize) -> Self {
        allocs.fetch_add(1, Ordering::SeqCst);
        Self {
            magic: AtomicU64::new(MAGIC),
            drops: Arc::clone(drops),
        }
    }
}

impl Drop for Sentinel {
    fn drop(&mut self) {
        let prev = self.magic.swap(POISON, Ordering::SeqCst);
        assert_eq!(prev, MAGIC, "sentinel dropped twice (double free)");
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

/// Cheap deterministic per-thread RNG (xorshift) for cell selection.
fn next_rand(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn churn_reclaims_everything_at_quiescence() {
    let deferred_before = shim_stats::destructions_deferred();
    let executed_before = shim_stats::destructions_executed();

    let drops = Arc::new(AtomicUsize::new(0));
    let allocs = Arc::new(AtomicUsize::new(0));
    let cells: Arc<Vec<Atomic<Sentinel>>> = Arc::new(
        (0..CELLS)
            .map(|_| Atomic::new(Sentinel::new(&drops, &allocs)))
            .collect(),
    );
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    // Writers: replace or delete (swap to null) cells, retiring whatever
    // they displace; deletes are followed by a reinstall so readers keep
    // finding live values.
    for w in 0..WRITERS {
        let cells = Arc::clone(&cells);
        let drops = Arc::clone(&drops);
        let allocs = Arc::clone(&allocs);
        handles.push(std::thread::spawn(move || {
            let mut rng = 0x9E37_79B9_7F4A_7C15u64.wrapping_add(w as u64);
            for round in 0..WRITER_ROUNDS {
                let cell = &cells[(next_rand(&mut rng) as usize) % CELLS];
                let guard = epoch::pin();
                if round % 3 == 0 {
                    // Delete: unlink, retire, then reinstall fresh.
                    let old = cell.swap(
                        crossbeam_epoch::Shared::null(),
                        Ordering::AcqRel,
                        &guard,
                    );
                    // SAFETY: unlinked by the swap; pinned readers are
                    // protected by the grace period.
                    unsafe { guard.defer_destroy(old) };
                    let fresh = Owned::new(Sentinel::new(&drops, &allocs));
                    let old = cell.swap(fresh, Ordering::AcqRel, &guard);
                    // SAFETY: As above (another writer may have raced a
                    // value in between our two swaps).
                    unsafe { guard.defer_destroy(old) };
                } else {
                    // Replace in place.
                    let fresh = Owned::new(Sentinel::new(&drops, &allocs));
                    let old = cell.swap(fresh, Ordering::AcqRel, &guard);
                    // SAFETY: As above.
                    unsafe { guard.defer_destroy(old) };
                }
                drop(guard);
            }
        }));
    }
    // Readers: hold a guard across a sweep of dereferences; a freed
    // sentinel would be poisoned.
    for r in 0..READERS {
        let cells = Arc::clone(&cells);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut rng = 0xDEAD_BEEF_u64.wrapping_add(r as u64);
            while !stop.load(Ordering::Relaxed) {
                let guard = epoch::pin();
                for _ in 0..8 {
                    let cell = &cells[(next_rand(&mut rng) as usize) % CELLS];
                    let shared = cell.load(Ordering::Acquire, &guard);
                    // SAFETY: loaded under `guard`; the collector must not
                    // free it while we are pinned.
                    if let Some(s) = unsafe { shared.as_ref() } {
                        assert_eq!(
                            s.magic.load(Ordering::SeqCst),
                            MAGIC,
                            "reader saw a freed sentinel (use-after-free)"
                        );
                    }
                }
                drop(guard);
            }
        }));
    }

    for handle in handles.drain(..WRITERS) {
        handle.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for handle in handles {
        handle.join().unwrap();
    }

    // Retire the survivors still installed in the cells.
    {
        let guard = epoch::pin();
        for cell in cells.iter() {
            let old = cell.swap(crossbeam_epoch::Shared::null(), Ordering::AcqRel, &guard);
            // SAFETY: all writers have joined; the swap unlinked the value.
            unsafe { guard.defer_destroy(old) };
        }
        drop(guard);
    }

    // Quiescence: every thread has unpinned. A final pin() + flush() per
    // round seals this thread's bag and walks the epoch one step; a
    // handful of rounds completes every bag's two-epoch grace period.
    let expected = allocs.load(Ordering::SeqCst);
    for _ in 0..64 {
        if drops.load(Ordering::SeqCst) == expected {
            break;
        }
        let guard = epoch::pin();
        guard.flush();
        drop(guard);
    }

    assert_eq!(
        drops.load(Ordering::SeqCst),
        expected,
        "every retired sentinel must be freed at quiescence (the old shim leaked all of them)"
    );
    let deferred = shim_stats::destructions_deferred() - deferred_before;
    let executed = shim_stats::destructions_executed() - executed_before;
    assert_eq!(deferred, expected as u64, "every allocation was retired exactly once");
    assert_eq!(
        executed, deferred,
        "executed destructions must converge to deferred destructions at quiescence"
    );
}
