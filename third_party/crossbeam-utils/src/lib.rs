//! Offline API-compatible shim for the `crossbeam-utils` crate.
//!
//! Provides the subset used by this workspace: [`CachePadded`] and a
//! minimal [`Backoff`].

/// Pads and aligns a value to the length of a cache line to avoid false
/// sharing. 128 bytes covers adjacent-line prefetchers on modern x86.
#[derive(Clone, Copy, Default, Hash, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value` to a cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// Exponential backoff for spin loops.
#[derive(Debug, Default)]
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

impl Backoff {
    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    /// Creates a fresh backoff.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets to the initial state.
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Spins for a bounded number of iterations.
    pub fn spin(&self) {
        let step = self.step.get().min(Self::SPIN_LIMIT);
        for _ in 0..(1u32 << step) {
            std::hint::spin_loop();
        }
        if self.step.get() <= Self::SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Spins or yields to the OS scheduler depending on how long we have
    /// been waiting.
    pub fn snooze(&self) {
        if self.step.get() <= Self::SPIN_LIMIT {
            self.spin();
        } else {
            std::thread::yield_now();
            if self.step.get() <= Self::YIELD_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }
    }

    /// Whether the caller should fall back to blocking.
    pub fn is_completed(&self) -> bool {
        self.step.get() > Self::YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_aligned() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(p.into_inner(), 7);
    }

    #[test]
    fn backoff_completes() {
        let b = Backoff::new();
        while !b.is_completed() {
            b.snooze();
        }
    }
}
