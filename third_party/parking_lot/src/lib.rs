//! Offline API-compatible shim for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so this workspace ships
//! thin wrappers over `std::sync` exposing the subset of the `parking_lot`
//! API the FloDB crates use: non-poisoning `Mutex` / `RwLock` / `Condvar`.
//! Poison errors are swallowed by recovering the inner guard, which matches
//! `parking_lot`'s "no poisoning" semantics closely enough for our tests.

use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (non-poisoning wrapper over `std::sync::Mutex`).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(PoisonError::into_inner),
        ))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&self.0).finish()
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// A reader-writer lock (non-poisoning wrapper over `std::sync::RwLock`).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RwLock").field(&self.0).finish()
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Condvar { .. }")
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and reacquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        self.wait_for(guard, timeout)
    }

    /// Blocks while `condition` holds.
    pub fn wait_while<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) {
        while condition(&mut **guard) {
            self.wait(guard);
        }
    }

    /// Wakes one blocked waiter. Returns whether a thread was woken (always
    /// reported `true`-agnostic by std, so this shim returns `false`).
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        false
    }

    /// Wakes all blocked waiters. Returns the number woken (unknown under
    /// std, reported as 0).
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert!(l.try_read().is_some());
    }

    #[test]
    fn condvar_signalling() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        drop(started);
        h.join().unwrap();
        assert!(*lock.lock());
    }
}
