//! Offline API-compatible mini `proptest`.
//!
//! The build container has no crates.io access, so this workspace ships a
//! small property-testing harness exposing the `proptest` surface its tests
//! use: the [`proptest!`] / [`prop_oneof!`] / `prop_assert*` macros, the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, `any::<T>()`,
//! integer-range strategies, tuple strategies, `collection::{vec,
//! hash_set}`, `option::of`, `Just` and
//! [`ProptestConfig`](test_runner::ProptestConfig).
//!
//! Differences from real proptest, deliberately accepted for a test-only
//! shim: no shrinking (a failing case panics with the generated inputs via
//! the assertion message), no persistence of failing seeds, and a fixed
//! deterministic RNG seeded per test function so failures reproduce
//! run-over-run.

/// Test-runner configuration.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted-but-ignored knobs kept for source compatibility.
        pub max_shrink_iters: u32,
        /// See `max_shrink_iters`.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 0,
                max_global_rejects: 1024,
            }
        }
    }

    /// Deterministic RNG handed to strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fixed-seed RNG; every `proptest!` function gets the same
        /// stream so failures reproduce.
        pub fn deterministic() -> Self {
            Self {
                state: 0x5DEE_CE66_D1CE_B00F,
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Value`.
    ///
    /// Unlike real proptest there is no shrinking: `generate` produces the
    /// final value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then uses it to build a second strategy to
        /// draw the final value from.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Discards generated values failing `pred` (bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                pred,
                whence,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) pred: F,
        pub(crate) whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1024 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1024 candidates: {}", self.whence);
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Samples one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Printable ASCII keeps generated keys readable in failures.
            (b' ' + rng.below(95) as u8) as char
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<A> {
        _marker: std::marker::PhantomData<fn() -> A>,
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    macro_rules! impl_strategy_for_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_strategy_for_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_strategy_for_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_strategy_for_tuple!(A: 0);
    impl_strategy_for_tuple!(A: 0, B: 1);
    impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
    impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
    impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

    /// Weighted choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! needs a positive total weight");
            Self {
                options,
                total_weight,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (weight, strat) in &self.options {
                if pick < *weight as u64 {
                    return strat.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weights covered the whole interval")
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// The size bounds of a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end: n + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// A `Vec` of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// A `HashSet` of values drawn from `element`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            // Bounded retries: narrow domains (e.g. u8 sets of size 200)
            // settle for fewer elements rather than looping forever, which
            // matches real proptest's duplicate-tolerant behaviour.
            let mut budget = n * 20 + 64;
            while out.len() < n && budget > 0 {
                out.insert(self.element.generate(rng));
                budget -= 1;
            }
            out
        }
    }

    /// Generates hash sets with target sizes in `size`.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// A strategy yielding `None` a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Wraps `inner`'s values in `Option`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The `proptest::prelude` namespace test files import wholesale.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module alias (`prop::collection::vec` style paths).
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Asserts a condition inside a property (panics; no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(u8, u8),
        Del(u8),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
            1 => any::<u8>().prop_map(Op::Del),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(any::<u8>(), 3..10)) {
            prop_assert!((3..10).contains(&v.len()));
        }

        #[test]
        fn ranges_respect_bounds(x in 5u64..17) {
            prop_assert!((5..17).contains(&x));
        }

        #[test]
        fn oneof_and_option_generate(ops in crate::collection::vec(op(), 1..50),
                                     maybe in crate::option::of(any::<u16>())) {
            prop_assert!(!ops.is_empty());
            let _ = maybe;
        }

        #[test]
        fn hash_sets_are_unique(s in crate::collection::hash_set(any::<u16>(), 1..60)) {
            prop_assert!(!s.is_empty());
        }
    }

    #[test]
    fn config_literal_field_syntax_compiles() {
        let c = ProptestConfig {
            cases: 3,
            ..ProptestConfig::default()
        };
        assert_eq!(c.cases, 3);
    }
}
