//! Offline stand-in for the `snap` (Snappy) crate.
//!
//! No crate in the workspace calls Snappy yet, but the workspace manifest
//! pins `snap` for future block compression work. This shim round-trips
//! data in a *stored* format (varint length prefix + raw bytes). It is NOT
//! wire-compatible with real Snappy; swap in the real crate before reading
//! externally produced files.

/// Errors produced by [`raw::Decoder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input ended before the declared payload.
    Truncated,
    /// The length header was malformed.
    Header,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Truncated => write!(f, "snap shim: truncated input"),
            Error::Header => write!(f, "snap shim: malformed length header"),
        }
    }
}

impl std::error::Error for Error {}

/// Raw (frameless) encoding, mirroring `snap::raw`.
pub mod raw {
    use super::Error;

    fn put_uvarint(out: &mut Vec<u8>, mut n: u64) {
        while n >= 0x80 {
            out.push((n as u8 & 0x7F) | 0x80);
            n >>= 7;
        }
        out.push(n as u8);
    }

    fn get_uvarint(input: &[u8]) -> Result<(u64, usize), Error> {
        let mut n = 0u64;
        for (i, &b) in input.iter().take(10).enumerate() {
            n |= u64::from(b & 0x7F) << (7 * i);
            if b < 0x80 {
                return Ok((n, i + 1));
            }
        }
        Err(Error::Header)
    }

    /// Stored-format encoder.
    #[derive(Debug, Default, Clone)]
    pub struct Encoder {}

    impl Encoder {
        /// Creates an encoder.
        pub fn new() -> Self {
            Self {}
        }

        /// "Compresses" `input` into the stored format.
        pub fn compress_vec(&mut self, input: &[u8]) -> Result<Vec<u8>, Error> {
            let mut out = Vec::with_capacity(input.len() + 10);
            put_uvarint(&mut out, input.len() as u64);
            out.extend_from_slice(input);
            Ok(out)
        }
    }

    /// Stored-format decoder.
    #[derive(Debug, Default, Clone)]
    pub struct Decoder {}

    impl Decoder {
        /// Creates a decoder.
        pub fn new() -> Self {
            Self {}
        }

        /// Decompresses stored-format `input`.
        pub fn decompress_vec(&mut self, input: &[u8]) -> Result<Vec<u8>, Error> {
            let (len, header) = get_uvarint(input)?;
            let body = &input[header..];
            if (body.len() as u64) < len {
                return Err(Error::Truncated);
            }
            Ok(body[..len as usize].to_vec())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::raw::{Decoder, Encoder};

    #[test]
    fn round_trip() {
        let data = b"the quick brown fox".repeat(20);
        let enc = Encoder::new().compress_vec(&data).unwrap();
        let dec = Decoder::new().decompress_vec(&enc).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn truncated_fails() {
        let enc = Encoder::new().compress_vec(b"hello world").unwrap();
        assert!(Decoder::new().decompress_vec(&enc[..enc.len() - 3]).is_err());
    }
}
