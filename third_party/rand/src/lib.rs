//! Offline API-compatible shim for the `rand` crate (0.8-style API).
//!
//! Provides the subset used by this workspace: the [`Rng`] and
//! [`SeedableRng`] traits and [`rngs::SmallRng`], backed by xoshiro256++
//! seeded through SplitMix64. Deterministic given a seed, which is exactly
//! what the workload generators and tests need.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types that can be sampled uniformly from the full value domain by
/// `Rng::gen` (the shim's stand-in for `Standard` distributions).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); bias is < 2^-32 for the
                // span sizes used here, acceptable for workload generation.
                self.start + ((rng.next_u64() as u128 * span as u128) >> 64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range in gen_range");
                if start == 0 && end == <$t>::MAX {
                    return Standard::sample(rng);
                }
                let span = (end - start) as u64 + 1;
                start + ((rng.next_u64() as u128 * span as u128) >> 64) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(
                    ((rng.next_u64() as u128 * span as u128) >> 64) as $t,
                )
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level convenience methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let u: f64 = Standard::sample(self);
        u < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(numerator <= denominator);
        self.gen_range(0..denominator) < numerator
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS-derived entropy (here: a hash of the
    /// current time and a counter — no OS RNG in the shim).
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
        let t = std::time::UNIX_EPOCH
            .elapsed()
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Self::seed_from_u64(t ^ COUNTER.fetch_add(0x6C62_272E_07BB_0142, Ordering::Relaxed))
    }
}

/// Built-in generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    /// The standard generator — aliased to [`SmallRng`] in the shim.
    pub type StdRng = SmallRng;
}

/// Returns a fresh, time-seeded generator.
pub fn thread_rng() -> rngs::SmallRng {
    rngs::SmallRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: usize = r.gen_range(0..3);
            assert!(w < 3);
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut r = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
