//! Model-aware `spin_loop`.

use crate::sched;

/// Spin-loop hint. Inside a model run this is a deprioritizing yield
/// (identical to [`crate::thread::yield_now`]) so that busy-wait loops
/// terminate under exploration instead of livelocking the serial
/// scheduler; outside, it is `std::hint::spin_loop`.
pub fn spin_loop() {
    match sched::current() {
        Some((exec, me)) => exec.yield_point(me, "hint::spin_loop"),
        None => std::hint::spin_loop(),
    }
}
