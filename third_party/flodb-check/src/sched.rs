//! The serial token-passing scheduler at the heart of the model checker.
//!
//! An [`Execution`] runs a test body on real OS threads but lets only one
//! thread make progress at a time: every instrumented operation (atomic
//! access, lock acquire, condvar wait, spawn, yield) is a *decision point*
//! where the scheduler picks which runnable thread holds the token next.
//! Because the choice sequence fully determines the interleaving, a run is
//! replayable from its recorded decision script, and the space of
//! interleavings can be explored systematically (DFS with bounded
//! preemptions) or probabilistically (seeded xorshift random walks).
//!
//! Design notes:
//!
//! - Threads hand the token over via one `std::sync::Mutex` + `Condvar`
//!   pair owned by the execution. A thread parked at a decision point waits
//!   until `current == its id`.
//! - `yield_now` (and `spin_loop`) mark the caller *Yielded*: it is not
//!   schedulable again until some other thread has run, which makes
//!   spin-wait loops terminate under exhaustive exploration (the loom
//!   trick).
//! - Timed condvar waits are modeled as *timeout-eligible*: the waiter
//!   times out only when nothing else can run, so schedules stay finite
//!   without modeling wall-clock time.
//! - A panic in any model thread (assertion failure) or a state where no
//!   thread can run (deadlock) aborts the run and reports the decision
//!   script that led there.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, OnceLock, PoisonError};

/// Sentinel "no thread holds the token" value for `Shared::current`.
const NOBODY: usize = usize::MAX;

/// Global source of model-object ids (mutexes, condvars). Globally unique
/// ids let `static` model mutexes be reused across executions: each
/// execution lazily creates per-id state in a map keyed by these ids.
static NEXT_OBJECT_ID: AtomicUsize = AtomicUsize::new(0);

/// Allocates a fresh id for a model mutex or condvar.
pub(crate) fn next_object_id() -> usize {
    NEXT_OBJECT_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// The execution the current OS thread belongs to, if it is a model
    /// thread inside a run. `None` means primitives pass through to std.
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Returns the current thread's execution context, if any.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(ctx: Option<(Arc<Execution>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// Why a run ended unsuccessfully.
#[derive(Debug, Clone)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure in the test body).
    Panic(String),
    /// No thread was runnable, yielded, or timeout-eligible.
    Deadlock,
    /// The run exceeded the per-run step budget (likely livelock).
    StepBudget(usize),
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Panic(msg) => write!(f, "thread panicked: {msg}"),
            FailureKind::Deadlock => write!(f, "deadlock: no thread can make progress"),
            FailureKind::StepBudget(n) => {
                write!(f, "step budget exhausted after {n} steps (livelock?)")
            }
        }
    }
}

/// One scheduling decision: which thread got the token at a branch point
/// where more than one thread was eligible.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Thread ids that were eligible to run, ascending.
    pub options: Vec<usize>,
    /// Index into `options` that was chosen.
    pub chosen: usize,
    /// The thread that held the token when the decision was made.
    pub running: usize,
}

/// One entry in the operation trace (for failure reports).
#[derive(Debug, Clone)]
pub struct Event {
    /// Thread that performed the operation.
    pub tid: usize,
    /// Static label, e.g. `"Mutex::lock"`.
    pub label: &'static str,
    /// Object id the operation touched, or `usize::MAX` if none.
    pub obj: usize,
}

/// A failed run: the failure kind plus everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// Zero-based iteration at which the failure was found.
    pub iteration: usize,
    /// Seed of the failing iteration (random strategy only).
    pub seed: Option<u64>,
    /// Replayable schedule: `chosen` index of every multi-option decision.
    pub schedule: Vec<usize>,
    /// Trailing operation trace of the failing run.
    pub trace: Vec<Event>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model check failed: {}", self.kind)?;
        writeln!(f, "  iteration: {}", self.iteration)?;
        if let Some(seed) = self.seed {
            writeln!(f, "  seed: {seed:#x}")?;
        }
        writeln!(
            f,
            "  schedule (replay with Builder::replay): {:?}",
            self.schedule
        )?;
        writeln!(f, "  last {} operations:", self.trace.len().min(40))?;
        let start = self.trace.len().saturating_sub(40);
        for ev in &self.trace[start..] {
            if ev.obj == usize::MAX {
                writeln!(f, "    [t{}] {}", ev.tid, ev.label)?;
            } else {
                writeln!(f, "    [t{}] {} (#{})", ev.tid, ev.label, ev.obj)?;
            }
        }
        Ok(())
    }
}

/// Summary of a successful check.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of schedules executed.
    pub iterations: usize,
    /// Whether the DFS strategy proved the bounded space exhausted
    /// (always `false` for the random strategy).
    pub exhausted: bool,
}

/// How to explore the schedule space.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Seeded pseudo-random walks; iteration `i` uses `seed + i`.
    Random {
        /// Number of schedules to run.
        iterations: usize,
        /// Base seed; each iteration perturbs it deterministically.
        seed: u64,
    },
    /// Depth-first enumeration of schedules with at most `max_preemptions`
    /// preemptive context switches per schedule, capped at
    /// `max_iterations` runs.
    Dfs {
        /// Preemption bound (non-preemptive switches are always free).
        max_preemptions: usize,
        /// Hard cap on schedules executed.
        max_iterations: usize,
    },
    /// Replay one exact schedule (from [`Failure::schedule`]).
    Replay(Vec<usize>),
}

/// What the scheduler consults when more than one thread is eligible.
enum Chooser {
    /// Follow the script; after it is exhausted, prefer the running
    /// thread (non-preemptive baseline), else the lowest eligible id.
    Script(Vec<usize>),
    /// Seeded xorshift.
    Random(XorShift),
}

/// Minimal xorshift64* PRNG — deterministic, no external deps.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point.
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Run state of one model thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    /// Eligible to be scheduled.
    Runnable,
    /// Called `yield_now`/`spin_loop`; eligible only after someone else
    /// runs (or nothing else can).
    Yielded,
    /// Waiting to acquire the mutex with this id.
    BlockedMutex(usize),
    /// Waiting on a condvar; must reacquire `mutex` when woken.
    BlockedCondvar {
        /// Condvar object id.
        cv: usize,
        /// Mutex to reacquire on wakeup.
        mutex: usize,
        /// Whether the wait had a timeout (may be woken spuriously by the
        /// scheduler when nothing else can run).
        timeout_ok: bool,
    },
    /// Woken from a condvar, waiting to reacquire the mutex.
    Reacquiring(usize),
    /// Waiting for the thread with this id to finish.
    BlockedJoin(usize),
    /// Done (body returned or panicked).
    Finished,
}

#[derive(Debug)]
struct ThreadSlot {
    state: RunState,
    /// Set when a timed condvar wait was ended by the model "timeout".
    wait_timed_out: bool,
}

#[derive(Debug, Default)]
struct MutexState {
    owner: Option<usize>,
}

/// Outcome of a single run, reported to the controller.
struct RunOutcome {
    failure: Option<FailureKind>,
    decisions: Vec<Decision>,
    trace: Vec<Event>,
}

struct Shared {
    threads: Vec<ThreadSlot>,
    /// Thread currently holding the token ([`NOBODY`] once the run ends).
    current: usize,
    chooser: Chooser,
    decisions: Vec<Decision>,
    trace: Vec<Event>,
    steps: usize,
    max_steps: usize,
    mutexes: HashMap<usize, MutexState>,
    outcome: Option<RunOutcome>,
}

/// One model-checked run of the test body. See module docs.
pub(crate) struct Execution {
    shared: StdMutex<Shared>,
    cv: StdCondvar,
}

impl Execution {
    fn new(chooser: Chooser, max_steps: usize) -> Self {
        Self {
            shared: StdMutex::new(Shared {
                threads: vec![ThreadSlot {
                    state: RunState::Runnable,
                    wait_timed_out: false,
                }],
                current: 0,
                chooser,
                decisions: Vec::new(),
                trace: Vec::new(),
                steps: 0,
                max_steps,
                mutexes: HashMap::new(),
                outcome: None,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock_shared(&self) -> std::sync::MutexGuard<'_, Shared> {
        self.shared.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records an operation, charges a step, and if the budget is blown
    /// fails the run.
    fn note_op(shared: &mut Shared, me: usize, label: &'static str, obj: usize) -> bool {
        shared.trace.push(Event {
            tid: me,
            label,
            obj,
        });
        shared.steps += 1;
        if shared.steps > shared.max_steps {
            let budget = shared.max_steps;
            Self::finish_run(shared, Some(FailureKind::StepBudget(budget)));
            return false;
        }
        true
    }

    /// Ends the run, recording the outcome for the controller.
    fn finish_run(shared: &mut Shared, failure: Option<FailureKind>) {
        if shared.outcome.is_some() {
            return;
        }
        shared.current = NOBODY;
        shared.outcome = Some(RunOutcome {
            failure,
            decisions: std::mem::take(&mut shared.decisions),
            trace: std::mem::take(&mut shared.trace),
        });
    }

    /// Computes the eligible thread set (ascending ids).
    fn eligible(shared: &Shared) -> Vec<usize> {
        let mut out = Vec::new();
        for (tid, slot) in shared.threads.iter().enumerate() {
            let ok = match slot.state {
                RunState::Runnable => true,
                RunState::BlockedMutex(m) | RunState::Reacquiring(m) => shared
                    .mutexes
                    .get(&m)
                    .is_none_or(|s| s.owner.is_none()),
                RunState::BlockedJoin(t) => shared.threads[t].state == RunState::Finished,
                _ => false,
            };
            if ok {
                out.push(tid);
            }
        }
        out
    }

    /// Picks the next thread to run and hands it the token. Must be called
    /// with the caller's own new state already stored in its slot. Returns
    /// after updating `shared.current` (possibly to the caller itself).
    fn schedule(&self, shared: &mut Shared, me: usize) {
        if shared.outcome.is_some() {
            return;
        }
        let mut cands = Self::eligible(shared);

        // Nothing plainly runnable: un-yield everyone and retry.
        if cands.is_empty() {
            for slot in &mut shared.threads {
                if slot.state == RunState::Yielded {
                    slot.state = RunState::Runnable;
                }
            }
            cands = Self::eligible(shared);
        }

        // Still nothing: fire model "timeouts" on timed condvar waits,
        // lowest tid first, until something becomes eligible.
        if cands.is_empty() {
            loop {
                let victim = shared.threads.iter().position(|s| {
                    matches!(
                        s.state,
                        RunState::BlockedCondvar {
                            timeout_ok: true,
                            ..
                        }
                    )
                });
                match victim {
                    Some(tid) => {
                        if let RunState::BlockedCondvar { mutex, .. } = shared.threads[tid].state {
                            shared.threads[tid].state = RunState::Reacquiring(mutex);
                            shared.threads[tid].wait_timed_out = true;
                        }
                        cands = Self::eligible(shared);
                        if !cands.is_empty() {
                            break;
                        }
                    }
                    None => break,
                }
            }
        }

        if cands.is_empty() {
            let all_done = shared
                .threads
                .iter()
                .all(|s| s.state == RunState::Finished);
            let failure = if all_done {
                None
            } else {
                Some(FailureKind::Deadlock)
            };
            Self::finish_run(shared, failure);
            self.cv.notify_all();
            return;
        }

        // Normalize the option order so the non-preemptive baseline — keep
        // the running thread going if it is still eligible, else lowest id —
        // is always index 0. The DFS backtracker enumerates untried siblings
        // as `chosen + 1 ..`, which is only exhaustive if the first visit to
        // every fresh decision picks index 0; with the running thread left
        // mid-list, lower-indexed siblings would never be explored.
        if let Some(pos) = cands.iter().position(|&t| t == me) {
            cands[..=pos].rotate_right(1);
        }

        // Choose among the candidates.
        let chosen_idx = if cands.len() == 1 {
            0
        } else {
            let idx = match &mut shared.chooser {
                Chooser::Script(script) => {
                    let pos = shared.decisions.len();
                    if pos < script.len() {
                        script[pos].min(cands.len() - 1)
                    } else {
                        0 // The baseline: index 0 by construction above.
                    }
                }
                Chooser::Random(rng) => (rng.next() % cands.len() as u64) as usize,
            };
            shared.decisions.push(Decision {
                options: cands.clone(),
                chosen: idx,
                running: me,
            });
            idx
        };
        let next = cands[chosen_idx];

        // Someone is about to run: threads that yielded become eligible
        // again for future decisions.
        for (tid, slot) in shared.threads.iter_mut().enumerate() {
            if tid != next && slot.state == RunState::Yielded {
                slot.state = RunState::Runnable;
            }
        }

        // Prepare the chosen thread.
        match shared.threads[next].state {
            RunState::BlockedMutex(m) | RunState::Reacquiring(m) => {
                shared.mutexes.entry(m).or_default().owner = Some(next);
                shared.threads[next].state = RunState::Runnable;
            }
            RunState::BlockedJoin(_) | RunState::Yielded => {
                shared.threads[next].state = RunState::Runnable;
            }
            RunState::Runnable => {}
            RunState::BlockedCondvar { .. } | RunState::Finished => {
                unreachable!("ineligible thread chosen")
            }
        }
        shared.current = next;
        self.cv.notify_all();
    }

    /// Blocks until this thread holds the token again (or forever if the
    /// run ended without it).
    fn park(&self, mut shared: std::sync::MutexGuard<'_, Shared>, me: usize) {
        while shared.current != me {
            shared = self
                .cv
                .wait(shared)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A plain decision point: the calling thread stays runnable and the
    /// scheduler may keep it running or switch.
    pub(crate) fn op_point(self: &Arc<Self>, me: usize, label: &'static str, obj: usize) {
        let mut shared = self.lock_shared();
        if !Self::note_op(&mut shared, me, label, obj) {
            self.cv.notify_all();
            self.park(shared, me);
            return;
        }
        self.schedule(&mut shared, me);
        self.park(shared, me);
    }

    /// `yield_now` / `spin_loop`: deprioritize the caller.
    pub(crate) fn yield_point(self: &Arc<Self>, me: usize, label: &'static str) {
        let mut shared = self.lock_shared();
        if !Self::note_op(&mut shared, me, label, usize::MAX) {
            self.cv.notify_all();
            self.park(shared, me);
            return;
        }
        shared.threads[me].state = RunState::Yielded;
        self.schedule(&mut shared, me);
        self.park(shared, me);
    }

    /// Acquires model ownership of mutex `id`, blocking if held.
    pub(crate) fn lock_mutex(self: &Arc<Self>, me: usize, id: usize) {
        let mut shared = self.lock_shared();
        if !Self::note_op(&mut shared, me, "Mutex::lock", id) {
            self.cv.notify_all();
            self.park(shared, me);
            return;
        }
        let state = shared.mutexes.entry(id).or_default();
        if state.owner.is_none() {
            // Free: contend for it like everyone else at a decision point —
            // block, then let the scheduler hand it to whichever eligible
            // thread it picks (possibly us).
        }
        shared.threads[me].state = RunState::BlockedMutex(id);
        self.schedule(&mut shared, me);
        self.park(shared, me);
        // When rescheduled, `schedule` has set owner = me.
    }

    /// Attempts to acquire mutex `id` without blocking.
    pub(crate) fn try_lock_mutex(self: &Arc<Self>, me: usize, id: usize) -> bool {
        let mut shared = self.lock_shared();
        if !Self::note_op(&mut shared, me, "Mutex::try_lock", id) {
            self.cv.notify_all();
            self.park(shared, me);
            return false;
        }
        let state = shared.mutexes.entry(id).or_default();
        let got = if state.owner.is_none() {
            state.owner = Some(me);
            true
        } else {
            false
        };
        self.schedule(&mut shared, me);
        self.park(shared, me);
        got
    }

    /// Releases model ownership of mutex `id`.
    pub(crate) fn unlock_mutex(self: &Arc<Self>, me: usize, id: usize) {
        let mut shared = self.lock_shared();
        if shared.outcome.is_some() {
            return;
        }
        let state = shared.mutexes.entry(id).or_default();
        debug_assert_eq!(state.owner, Some(me), "unlock by non-owner");
        state.owner = None;
        if !Self::note_op(&mut shared, me, "Mutex::unlock", id) {
            self.cv.notify_all();
            self.park(shared, me);
            return;
        }
        self.schedule(&mut shared, me);
        self.park(shared, me);
    }

    /// Condvar wait: atomically releases `mutex`, blocks on `cv`, and on
    /// wakeup reacquires `mutex` before returning. Returns whether the
    /// wait ended via the model timeout.
    pub(crate) fn condvar_wait(
        self: &Arc<Self>,
        me: usize,
        cv: usize,
        mutex: usize,
        timeout_ok: bool,
    ) -> bool {
        let mut shared = self.lock_shared();
        if !Self::note_op(&mut shared, me, "Condvar::wait", cv) {
            self.cv.notify_all();
            self.park(shared, me);
            return false;
        }
        let state = shared.mutexes.entry(mutex).or_default();
        debug_assert_eq!(state.owner, Some(me), "condvar wait without the lock");
        state.owner = None;
        shared.threads[me].wait_timed_out = false;
        shared.threads[me].state = RunState::BlockedCondvar {
            cv,
            mutex,
            timeout_ok,
        };
        self.schedule(&mut shared, me);
        self.park(shared, me);
        let mut shared = self.lock_shared();
        let timed_out = shared.threads[me].wait_timed_out;
        shared.threads[me].wait_timed_out = false;
        timed_out
    }

    /// Wakes waiters on condvar `id`. `all` wakes every waiter; otherwise
    /// the lowest-id waiter (deterministic). Returns the number woken.
    pub(crate) fn condvar_notify(self: &Arc<Self>, me: usize, id: usize, all: bool) -> usize {
        let mut shared = self.lock_shared();
        if !Self::note_op(
            &mut shared,
            me,
            if all {
                "Condvar::notify_all"
            } else {
                "Condvar::notify_one"
            },
            id,
        ) {
            self.cv.notify_all();
            self.park(shared, me);
            return 0;
        }
        let mut woken = 0;
        for slot in shared.threads.iter_mut() {
            if let RunState::BlockedCondvar { cv, mutex, .. } = slot.state {
                if cv == id {
                    slot.state = RunState::Reacquiring(mutex);
                    slot.wait_timed_out = false;
                    woken += 1;
                    if !all {
                        break;
                    }
                }
            }
        }
        self.schedule(&mut shared, me);
        self.park(shared, me);
        woken
    }

    /// Registers a new model thread (runnable immediately) and returns its
    /// id. The caller then spawns the OS thread and hits a decision point.
    pub(crate) fn register_thread(self: &Arc<Self>) -> usize {
        let mut shared = self.lock_shared();
        shared.threads.push(ThreadSlot {
            state: RunState::Runnable,
            wait_timed_out: false,
        });
        shared.threads.len() - 1
    }

    /// First park of a freshly spawned model thread: waits to be scheduled
    /// for the first time.
    pub(crate) fn initial_park(self: &Arc<Self>, me: usize) {
        let shared = self.lock_shared();
        self.park(shared, me);
    }

    /// Blocks until thread `target` finishes.
    pub(crate) fn join_thread(self: &Arc<Self>, me: usize, target: usize) {
        let mut shared = self.lock_shared();
        if !Self::note_op(&mut shared, me, "JoinHandle::join", target) {
            self.cv.notify_all();
            self.park(shared, me);
            return;
        }
        if shared.threads[target].state != RunState::Finished {
            shared.threads[me].state = RunState::BlockedJoin(target);
        }
        self.schedule(&mut shared, me);
        self.park(shared, me);
    }

    /// Marks the calling thread finished; a panic fails the whole run.
    pub(crate) fn thread_finished(self: &Arc<Self>, me: usize, panic_msg: Option<String>) {
        let mut shared = self.lock_shared();
        shared.threads[me].state = RunState::Finished;
        if let Some(msg) = panic_msg {
            Self::finish_run(&mut shared, Some(FailureKind::Panic(msg)));
            self.cv.notify_all();
            return;
        }
        if shared.outcome.is_some() {
            return;
        }
        shared.trace.push(Event {
            tid: me,
            label: "thread::exit",
            obj: usize::MAX,
        });
        self.schedule(&mut shared, me);
    }
}

/// Installs (once) a panic hook that silences panics from model threads:
/// the checker reports them itself, and expected-failure tests (mutation
/// suite) would otherwise spew backtraces.
fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let quiet = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("flodb-check-"));
            if !quiet {
                prev(info);
            }
        }));
    });
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Runs `body` once under `chooser`; blocks until the run completes or
/// fails, then returns the outcome.
fn run_once(
    chooser: Chooser,
    max_steps: usize,
    body: &Arc<dyn Fn() + Send + Sync>,
) -> RunOutcome {
    install_quiet_hook();
    let exec = Arc::new(Execution::new(chooser, max_steps));
    let root_exec = Arc::clone(&exec);
    let root_body = Arc::clone(body);
    std::thread::Builder::new()
        .name("flodb-check-0".to_owned())
        .spawn(move || {
            set_current(Some((Arc::clone(&root_exec), 0)));
            let result = panic::catch_unwind(AssertUnwindSafe(|| root_body()));
            let msg = result.err().map(|p| panic_message(&*p));
            root_exec.thread_finished(0, msg);
            set_current(None);
        })
        .expect("spawn model root thread");

    // Controller: wait for the run to end. Threads abandoned by a failing
    // run park forever on the execution's condvar and are leaked — that is
    // acceptable for a test tool and mirrors loom's behavior on failure.
    let mut shared = exec.lock_shared();
    while shared.outcome.is_none() {
        shared = exec
            .cv
            .wait(shared)
            .unwrap_or_else(PoisonError::into_inner);
    }
    shared.outcome.take().expect("outcome present")
}

fn schedule_of(decisions: &[Decision]) -> Vec<usize> {
    decisions.iter().map(|d| d.chosen).collect()
}

/// Whether choosing `options[j]` at this decision is a preemption: the
/// running thread was still eligible but a different thread was picked.
fn is_preemption(d: &Decision, j: usize) -> bool {
    d.options.contains(&d.running) && d.options[j] != d.running
}

/// Configuration for a model check. Start from [`Builder::new`], override
/// what you need, then call [`Builder::check`] or [`Builder::model`].
///
/// Environment overrides (useful in CI): `FLODB_CHECK_ITERS`,
/// `FLODB_CHECK_SEED`, `FLODB_CHECK_MAX_STEPS`.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Exploration strategy.
    pub strategy: Strategy,
    /// Per-run step budget (livelock guard).
    pub max_steps: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    /// A seeded random-walk builder (500 iterations unless overridden by
    /// `FLODB_CHECK_ITERS` / `FLODB_CHECK_SEED`).
    pub fn new() -> Self {
        let iterations = env_usize("FLODB_CHECK_ITERS").unwrap_or(500);
        let seed = env_u64("FLODB_CHECK_SEED").unwrap_or(0x5EED);
        let max_steps = env_usize("FLODB_CHECK_MAX_STEPS").unwrap_or(50_000);
        Self {
            strategy: Strategy::Random { iterations, seed },
            max_steps,
        }
    }

    /// DFS with a preemption bound — exhaustive for small bodies.
    pub fn dfs(max_preemptions: usize) -> Self {
        let max_iterations = env_usize("FLODB_CHECK_ITERS").unwrap_or(20_000);
        Self {
            strategy: Strategy::Dfs {
                max_preemptions,
                max_iterations,
            },
            max_steps: env_usize("FLODB_CHECK_MAX_STEPS").unwrap_or(50_000),
        }
    }

    /// Replays one exact schedule from a prior [`Failure`].
    pub fn replay(schedule: Vec<usize>) -> Self {
        Self {
            strategy: Strategy::Replay(schedule),
            max_steps: env_usize("FLODB_CHECK_MAX_STEPS").unwrap_or(50_000),
        }
    }

    /// Caps the number of explored schedules (random iterations, or the
    /// DFS iteration budget; no-op for replay).
    pub fn iterations(mut self, n: usize) -> Self {
        match &mut self.strategy {
            Strategy::Random { iterations, .. } => *iterations = n,
            Strategy::Dfs { max_iterations, .. } => *max_iterations = n,
            Strategy::Replay(_) => {}
        }
        self
    }

    /// Sets the random seed (no-op for DFS/replay).
    pub fn seed(mut self, s: u64) -> Self {
        if let Strategy::Random { seed, .. } = &mut self.strategy {
            *seed = s;
        }
        self
    }

    /// Sets the per-run step budget.
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Runs `body` under the configured strategy. Returns the first
    /// failure found, or a [`Report`] if every explored schedule passed.
    pub fn check<F>(&self, body: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
        match &self.strategy {
            Strategy::Random { iterations, seed } => {
                for i in 0..*iterations {
                    let s = seed.wrapping_add(i as u64);
                    let out = run_once(
                        Chooser::Random(XorShift::new(s)),
                        self.max_steps,
                        &body,
                    );
                    if let Some(kind) = out.failure {
                        return Err(Failure {
                            kind,
                            iteration: i,
                            seed: Some(s),
                            schedule: schedule_of(&out.decisions),
                            trace: out.trace,
                        });
                    }
                }
                Ok(Report {
                    iterations: *iterations,
                    exhausted: false,
                })
            }
            Strategy::Dfs {
                max_preemptions,
                max_iterations,
            } => {
                let mut script: Vec<usize> = Vec::new();
                let mut iterations = 0;
                loop {
                    let out = run_once(
                        Chooser::Script(script.clone()),
                        self.max_steps,
                        &body,
                    );
                    iterations += 1;
                    if let Some(kind) = out.failure {
                        return Err(Failure {
                            kind,
                            iteration: iterations - 1,
                            seed: None,
                            schedule: schedule_of(&out.decisions),
                            trace: out.trace,
                        });
                    }
                    if iterations >= *max_iterations {
                        return Ok(Report {
                            iterations,
                            exhausted: false,
                        });
                    }
                    // Backtrack: find the deepest decision with an untried
                    // alternative within the preemption budget.
                    let d = &out.decisions;
                    let mut preempts = vec![0usize; d.len() + 1];
                    for i in 0..d.len() {
                        preempts[i + 1] =
                            preempts[i] + usize::from(is_preemption(&d[i], d[i].chosen));
                    }
                    let mut next: Option<Vec<usize>> = None;
                    'search: for i in (0..d.len()).rev() {
                        for j in d[i].chosen + 1..d[i].options.len() {
                            if preempts[i] + usize::from(is_preemption(&d[i], j))
                                <= *max_preemptions
                            {
                                let mut s: Vec<usize> =
                                    d[..i].iter().map(|x| x.chosen).collect();
                                s.push(j);
                                next = Some(s);
                                break 'search;
                            }
                        }
                    }
                    match next {
                        Some(s) => script = s,
                        None => {
                            return Ok(Report {
                                iterations,
                                exhausted: true,
                            })
                        }
                    }
                }
            }
            Strategy::Replay(schedule) => {
                let out = run_once(
                    Chooser::Script(schedule.clone()),
                    self.max_steps,
                    &body,
                );
                match out.failure {
                    Some(kind) => Err(Failure {
                        kind,
                        iteration: 0,
                        seed: None,
                        schedule: schedule_of(&out.decisions),
                        trace: out.trace,
                    }),
                    None => Ok(Report {
                        iterations: 1,
                        exhausted: false,
                    }),
                }
            }
        }
    }

    /// Like [`Builder::check`] but panics with a formatted report on
    /// failure — the idiomatic entry point for `#[test]` functions.
    pub fn model<F>(&self, body: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        if let Err(failure) = self.check(body) {
            panic!("{failure}");
        }
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// Checks `body` with the default random strategy, panicking on failure.
///
/// Shorthand for `Builder::new().model(body)`.
pub fn model<F>(body: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().model(body);
}
