//! Instrumented synchronization primitives.
//!
//! Every type here is *dual-mode*: used from inside a model run it routes
//! through the `sched` module's scheduler (lock ownership is tracked by the
//! model, every access is a decision point), and used from a plain thread
//! it passes straight through to `std::sync`. That lets statics and setup
//! code built against these types keep working outside the checker.
//!
//! The API mirrors the subset of `parking_lot` the FloDB crates use (see
//! `third_party/parking_lot`): non-poisoning guards, `Condvar::wait(&mut
//! MutexGuard)`, `notify_one() -> bool`, `notify_all() -> usize`.

use std::sync::{self, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::sched::{self, Execution};

pub use std::sync::Arc;

/// Atomic types whose every access is a model decision point.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::sched;

    /// Charges a decision point for an atomic access when inside a run.
    #[inline]
    fn point(label: &'static str) {
        if let Some((exec, me)) = sched::current() {
            exec.op_point(me, label, usize::MAX);
        }
    }

    macro_rules! atomic_common {
        ($name:ident, $ty:ty) => {
            /// Model-instrumented drop-in for the std atomic of the same
            /// name. Inside a run every method is a scheduler decision
            /// point; outside it behaves exactly like std.
            /// `compare_exchange_weak` never fails spuriously under the
            /// model (the token-passing scheduler is sequentially
            /// consistent).
            #[derive(Debug, Default)]
            pub struct $name(std::sync::atomic::$name);

            impl $name {
                /// Creates a new atomic (usable in statics).
                pub const fn new(v: $ty) -> Self {
                    Self(std::sync::atomic::$name::new(v))
                }

                /// Loads the value.
                pub fn load(&self, order: Ordering) -> $ty {
                    point(concat!(stringify!($name), "::load"));
                    self.0.load(order)
                }

                /// Stores a value.
                pub fn store(&self, val: $ty, order: Ordering) {
                    point(concat!(stringify!($name), "::store"));
                    self.0.store(val, order);
                }

                /// Swaps the value, returning the previous one.
                pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                    point(concat!(stringify!($name), "::swap"));
                    self.0.swap(val, order)
                }

                /// Strong compare-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    point(concat!(stringify!($name), "::compare_exchange"));
                    self.0.compare_exchange(current, new, success, failure)
                }

                /// Weak compare-exchange (never spuriously fails in model
                /// runs).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    point(concat!(stringify!($name), "::compare_exchange_weak"));
                    self.0.compare_exchange(current, new, success, failure)
                }

                /// Returns a mutable reference to the value (exclusive
                /// access, no instrumentation needed).
                pub fn get_mut(&mut self) -> &mut $ty {
                    self.0.get_mut()
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $ty {
                    self.0.into_inner()
                }
            }
        };
    }

    macro_rules! atomic_int_ops {
        ($name:ident, $ty:ty) => {
            impl $name {
                /// Adds to the value, returning the previous one.
                pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                    point(concat!(stringify!($name), "::fetch_add"));
                    self.0.fetch_add(val, order)
                }

                /// Subtracts from the value, returning the previous one.
                pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                    point(concat!(stringify!($name), "::fetch_sub"));
                    self.0.fetch_sub(val, order)
                }

                /// Bitwise-ORs the value, returning the previous one.
                pub fn fetch_or(&self, val: $ty, order: Ordering) -> $ty {
                    point(concat!(stringify!($name), "::fetch_or"));
                    self.0.fetch_or(val, order)
                }

                /// Bitwise-ANDs the value, returning the previous one.
                pub fn fetch_and(&self, val: $ty, order: Ordering) -> $ty {
                    point(concat!(stringify!($name), "::fetch_and"));
                    self.0.fetch_and(val, order)
                }

                /// Bitwise-XORs the value, returning the previous one.
                pub fn fetch_xor(&self, val: $ty, order: Ordering) -> $ty {
                    point(concat!(stringify!($name), "::fetch_xor"));
                    self.0.fetch_xor(val, order)
                }

                /// Stores the maximum, returning the previous value.
                pub fn fetch_max(&self, val: $ty, order: Ordering) -> $ty {
                    point(concat!(stringify!($name), "::fetch_max"));
                    self.0.fetch_max(val, order)
                }

                /// Stores the minimum, returning the previous value.
                pub fn fetch_min(&self, val: $ty, order: Ordering) -> $ty {
                    point(concat!(stringify!($name), "::fetch_min"));
                    self.0.fetch_min(val, order)
                }
            }
        };
    }

    atomic_common!(AtomicBool, bool);
    atomic_common!(AtomicU32, u32);
    atomic_common!(AtomicU64, u64);
    atomic_common!(AtomicUsize, usize);
    atomic_common!(AtomicI64, i64);
    atomic_common!(AtomicIsize, isize);
    atomic_int_ops!(AtomicU32, u32);
    atomic_int_ops!(AtomicU64, u64);
    atomic_int_ops!(AtomicUsize, usize);
    atomic_int_ops!(AtomicI64, i64);
    atomic_int_ops!(AtomicIsize, isize);

    impl AtomicBool {
        /// Bitwise-ORs the value, returning the previous one.
        pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
            point("AtomicBool::fetch_or");
            self.0.fetch_or(val, order)
        }

        /// Bitwise-ANDs the value, returning the previous one.
        pub fn fetch_and(&self, val: bool, order: Ordering) -> bool {
            point("AtomicBool::fetch_and");
            self.0.fetch_and(val, order)
        }
    }

    /// Model-instrumented drop-in for `std::sync::atomic::AtomicPtr`.
    #[derive(Debug)]
    pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

    impl<T> AtomicPtr<T> {
        /// Creates a new atomic pointer (usable in statics).
        pub const fn new(p: *mut T) -> Self {
            Self(std::sync::atomic::AtomicPtr::new(p))
        }

        /// Loads the pointer.
        pub fn load(&self, order: Ordering) -> *mut T {
            point("AtomicPtr::load");
            self.0.load(order)
        }

        /// Stores a pointer.
        pub fn store(&self, p: *mut T, order: Ordering) {
            point("AtomicPtr::store");
            self.0.store(p, order);
        }

        /// Swaps the pointer, returning the previous one.
        pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
            point("AtomicPtr::swap");
            self.0.swap(p, order)
        }

        /// Strong compare-exchange.
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            point("AtomicPtr::compare_exchange");
            self.0.compare_exchange(current, new, success, failure)
        }

        /// Weak compare-exchange (never spuriously fails in model runs).
        pub fn compare_exchange_weak(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            point("AtomicPtr::compare_exchange_weak");
            self.0.compare_exchange(current, new, success, failure)
        }

        /// Returns a mutable reference to the pointer.
        pub fn get_mut(&mut self) -> &mut *mut T {
            self.0.get_mut()
        }

        /// Consumes the atomic, returning the pointer.
        pub fn into_inner(self) -> *mut T {
            self.0.into_inner()
        }
    }

    /// An atomic fence: a decision point in model runs, a real fence
    /// otherwise (the model scheduler is already sequentially consistent).
    pub fn fence(order: Ordering) {
        point("fence");
        std::sync::atomic::fence(order);
    }
}

/// A model-aware mutual exclusion primitive with `parking_lot`-style
/// (non-poisoning) API.
pub struct Mutex<T: ?Sized> {
    id: OnceLock<usize>,
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<sync::MutexGuard<'a, T>>,
    model: Option<(Arc<Execution>, usize)>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex (usable in statics).
    pub const fn new(value: T) -> Self {
        Self {
            id: OnceLock::new(),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Lazily-assigned globally-unique model object id.
    fn object_id(&self) -> usize {
        *self.id.get_or_init(sched::next_object_id)
    }

    /// Takes the underlying std lock, which a model-side owner must be
    /// able to do without blocking.
    fn raw_lock(&self) -> sync::MutexGuard<'_, T> {
        match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => {
                panic!("model mutex natively contended: mixing model and non-model threads on one lock is unsupported")
            }
        }
    }

    /// Acquires the mutex, blocking (or model-blocking) until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match sched::current() {
            None => MutexGuard {
                lock: self,
                inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
                model: None,
            },
            Some((exec, me)) => {
                exec.lock_mutex(me, self.object_id());
                MutexGuard {
                    lock: self,
                    inner: Some(self.raw_lock()),
                    model: Some((exec, me)),
                }
            }
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match sched::current() {
            None => match self.inner.try_lock() {
                Ok(g) => Some(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                    lock: self,
                    inner: Some(e.into_inner()),
                    model: None,
                }),
                Err(sync::TryLockError::WouldBlock) => None,
            },
            Some((exec, me)) => {
                if exec.try_lock_mutex(me, self.object_id()) {
                    Some(MutexGuard {
                        lock: self,
                        inner: Some(self.raw_lock()),
                        model: Some((exec, me)),
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&self.inner).finish()
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<'a, T: ?Sized> Drop for MutexGuard<'a, T> {
    fn drop(&mut self) {
        // Release the real lock first, then model ownership; no other
        // model thread can run in between (this thread holds the token).
        drop(self.inner.take());
        if let Some((exec, me)) = self.model.take() {
            exec.unlock_mutex(me, self.lock.object_id());
        }
    }
}

/// A model-aware reader-writer lock with `parking_lot`-style API.
///
/// Under the model, read and write acquisitions are both treated as
/// exclusive (the scheduler tracks one owner per object). That shrinks
/// the schedule space — reader/reader concurrency is never explored —
/// but it is *conservative* for safety properties: every interleaving the
/// exclusive model admits is also admitted by a real rwlock, and the
/// serialized schedules still exercise all lock-ordering decisions.
pub struct RwLock<T: ?Sized> {
    id: OnceLock<usize>,
    inner: sync::RwLock<T>,
}

/// Shared RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<sync::RwLockReadGuard<'a, T>>,
    model: Option<(Arc<Execution>, usize)>,
}

/// Exclusive RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
    model: Option<(Arc<Execution>, usize)>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock (usable in statics).
    pub const fn new(value: T) -> Self {
        Self {
            id: OnceLock::new(),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    fn object_id(&self) -> usize {
        *self.id.get_or_init(sched::next_object_id)
    }

    /// Takes the underlying std read lock, which a model-side owner must
    /// be able to do without blocking (ownership is exclusive under the
    /// model, so no native writer can hold it).
    fn raw_read(&self) -> sync::RwLockReadGuard<'_, T> {
        match self.inner.try_read() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => {
                panic!("model rwlock natively contended: mixing model and non-model threads on one lock is unsupported")
            }
        }
    }

    /// Takes the underlying std write lock without blocking (see
    /// [`Self::raw_read`]).
    fn raw_write(&self) -> sync::RwLockWriteGuard<'_, T> {
        match self.inner.try_write() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => {
                panic!("model rwlock natively contended: mixing model and non-model threads on one lock is unsupported")
            }
        }
    }

    /// Acquires shared read access (exclusive under the model).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match sched::current() {
            None => RwLockReadGuard {
                lock: self,
                inner: Some(self.inner.read().unwrap_or_else(PoisonError::into_inner)),
                model: None,
            },
            Some((exec, me)) => {
                exec.lock_mutex(me, self.object_id());
                RwLockReadGuard {
                    lock: self,
                    inner: Some(self.raw_read()),
                    model: Some((exec, me)),
                }
            }
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match sched::current() {
            None => RwLockWriteGuard {
                lock: self,
                inner: Some(self.inner.write().unwrap_or_else(PoisonError::into_inner)),
                model: None,
            },
            Some((exec, me)) => {
                exec.lock_mutex(me, self.object_id());
                RwLockWriteGuard {
                    lock: self,
                    inner: Some(self.raw_write()),
                    model: Some((exec, me)),
                }
            }
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match sched::current() {
            None => match self.inner.try_read() {
                Ok(g) => Some(RwLockReadGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                    lock: self,
                    inner: Some(e.into_inner()),
                    model: None,
                }),
                Err(sync::TryLockError::WouldBlock) => None,
            },
            Some((exec, me)) => {
                if exec.try_lock_mutex(me, self.object_id()) {
                    Some(RwLockReadGuard {
                        lock: self,
                        inner: Some(self.raw_read()),
                        model: Some((exec, me)),
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match sched::current() {
            None => match self.inner.try_write() {
                Ok(g) => Some(RwLockWriteGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                    lock: self,
                    inner: Some(e.into_inner()),
                    model: None,
                }),
                Err(sync::TryLockError::WouldBlock) => None,
            },
            Some((exec, me)) => {
                if exec.try_lock_mutex(me, self.object_id()) {
                    Some(RwLockWriteGuard {
                        lock: self,
                        inner: Some(self.raw_write()),
                        model: Some((exec, me)),
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RwLock").field(&self.inner).finish()
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> Drop for RwLockReadGuard<'a, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((exec, me)) = self.model.take() {
            exec.unlock_mutex(me, self.lock.object_id());
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<'a, T: ?Sized> Drop for RwLockWriteGuard<'a, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((exec, me)) = self.model.take() {
            exec.unlock_mutex(me, self.lock.object_id());
        }
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed. Under the
    /// model, "the timeout elapsed" means the scheduler fired the wait's
    /// timeout because no other thread could make progress.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A model-aware condition variable paired with [`Mutex`].
///
/// Timed waits (`wait_for` / `wait_until`) do not consult the clock in
/// model runs: the waiter parks and is woken with `timed_out() == true`
/// only when no other thread can make progress, which keeps schedules
/// deterministic while still exercising the timeout code path.
#[derive(Default)]
pub struct Condvar {
    id: OnceLock<usize>,
    inner: sync::Condvar,
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Condvar { .. }")
    }
}

impl Condvar {
    /// Creates a new condition variable (usable in statics).
    pub const fn new() -> Self {
        Self {
            id: OnceLock::new(),
            inner: sync::Condvar::new(),
        }
    }

    fn object_id(&self) -> usize {
        *self.id.get_or_init(sched::next_object_id)
    }

    /// Shared model-side wait path; returns whether the model timeout
    /// fired.
    fn model_wait<T>(
        &self,
        exec: &Arc<Execution>,
        me: usize,
        guard: &mut MutexGuard<'_, T>,
        timeout_ok: bool,
    ) -> bool {
        let mid = guard.lock.object_id();
        drop(guard.inner.take());
        let timed_out = exec.condvar_wait(me, self.object_id(), mid, timeout_ok);
        guard.inner = Some(guard.lock.raw_lock());
        timed_out
    }

    /// Blocks until notified, atomically releasing and reacquiring the
    /// lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        match guard.model.clone() {
            Some((exec, me)) => {
                self.model_wait(&exec, me, guard, false);
            }
            None => {
                let inner = guard.inner.take().expect("guard present");
                let inner = self
                    .inner
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
                guard.inner = Some(inner);
            }
        }
    }

    /// Blocks until notified or `timeout` elapses (see type docs for the
    /// model-run meaning of a timeout).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        match guard.model.clone() {
            Some((exec, me)) => WaitTimeoutResult(self.model_wait(&exec, me, guard, true)),
            None => {
                let inner = guard.inner.take().expect("guard present");
                let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
                    Ok((g, r)) => (g, r),
                    Err(e) => e.into_inner(),
                };
                guard.inner = Some(inner);
                WaitTimeoutResult(res.timed_out())
            }
        }
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        if guard.model.is_some() {
            return self.wait_for(guard, Duration::ZERO);
        }
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Blocks while `condition` holds.
    pub fn wait_while<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) {
        while condition(&mut **guard) {
            self.wait(guard);
        }
    }

    /// Wakes one blocked waiter (lowest thread id under the model, for
    /// determinism). Returns whether a waiter was woken (model runs only;
    /// `false` under std like the parking_lot shim).
    pub fn notify_one(&self) -> bool {
        match sched::current() {
            Some((exec, me)) => exec.condvar_notify(me, self.object_id(), false) > 0,
            None => {
                self.inner.notify_one();
                false
            }
        }
    }

    /// Wakes all blocked waiters. Returns the number woken (model runs
    /// only; 0 under std like the parking_lot shim).
    pub fn notify_all(&self) -> usize {
        match sched::current() {
            Some((exec, me)) => exec.condvar_notify(me, self.object_id(), true),
            None => {
                self.inner.notify_all();
                0
            }
        }
    }
}
