//! `flodb-check`: a deterministic concurrency model checker for the FloDB
//! workspace, in the spirit of `loom` and `shuttle`.
//!
//! # What it does
//!
//! A test body written against this crate's primitives ([`sync::Mutex`],
//! [`sync::Condvar`], [`sync::atomic`], [`thread::spawn`]) is executed many
//! times, each time under a different thread interleaving chosen by a
//! deterministic scheduler. Only one thread runs at a time; every
//! instrumented operation is a *decision point* where the scheduler may
//! switch threads. Assertion failures, deadlocks, and livelocks are
//! reported together with the exact decision sequence that produced them,
//! which can be replayed with [`Builder::replay`].
//!
//! Strategies:
//! - [`Builder::new`] — seeded pseudo-random walks (default 500, override
//!   with `FLODB_CHECK_ITERS` / `FLODB_CHECK_SEED`). Good default for CI.
//! - [`Builder::dfs`] — systematic DFS with a *preemption bound*:
//!   schedules with at most N involuntary context switches are enumerated
//!   exhaustively. Most concurrency bugs need only 1-2 preemptions
//!   (CHESS's observation), so small bounds find real races fast.
//! - [`Builder::replay`] — re-run one exact schedule from a failure.
//!
//! # What it does not model
//!
//! The scheduler is **sequentially consistent**: weak-memory reorderings
//! (e.g. a `Relaxed` store becoming visible late) are not explored, so the
//! checker validates interleaving logic, not memory-ordering annotations.
//! Code that does not go through these primitives (raw std atomics, the
//! epoch-GC internals) executes atomically between decision points.
//!
//! # Dual mode
//!
//! Every primitive passes through to `std` when used outside a model run,
//! so statics and helper code shared with production builds keep working.
//!
//! # Example
//!
//! ```
//! use flodb_check::sync::atomic::{AtomicU64, Ordering};
//! use flodb_check::sync::Arc;
//!
//! // A correctly-synchronized counter passes an exhaustive check.
//! let report = flodb_check::Builder::dfs(2)
//!     .check(|| {
//!         let n = Arc::new(AtomicU64::new(0));
//!         let n2 = Arc::clone(&n);
//!         let t = flodb_check::thread::spawn(move || {
//!             n2.fetch_add(1, Ordering::SeqCst);
//!         });
//!         n.fetch_add(1, Ordering::SeqCst);
//!         t.join().unwrap();
//!         assert_eq!(n.load(Ordering::SeqCst), 2);
//!     })
//!     .expect("no race in fetch_add counter");
//! assert!(report.iterations >= 1);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod sched;

pub mod hint;
pub mod sync;
pub mod thread;

pub use sched::{
    model, Builder, Decision, Event, Failure, FailureKind, Report, Strategy,
};
