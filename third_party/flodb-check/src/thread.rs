//! Model-aware thread spawning, joining, and yielding.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

use crate::sched::{self, Execution};

/// Yields the current thread. Inside a model run this *deprioritizes* the
/// caller: it is not schedulable again until another thread has run, which
/// makes spin-wait loops converge under exhaustive exploration.
pub fn yield_now() {
    match sched::current() {
        Some((exec, me)) => exec.yield_point(me, "thread::yield_now"),
        None => std::thread::yield_now(),
    }
}

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<Execution>,
        tid: usize,
        result: Arc<StdMutex<Option<std::thread::Result<T>>>>,
    },
}

/// Handle to a spawned thread; join-able like `std::thread::JoinHandle`.
pub struct JoinHandle<T>(Inner<T>);

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("JoinHandle { .. }")
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result.
    ///
    /// A model handle must be joined from a thread in the same run. If the
    /// target thread panicked, the whole run has already failed and the
    /// joiner never resumes (the checker reports the panic).
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model { exec, tid, result } => {
                let (_, me) = sched::current()
                    .expect("model JoinHandle joined from outside its run");
                exec.join_thread(me, tid);
                result
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("joined model thread left no result")
            }
        }
    }
}

/// Spawns a thread. Inside a model run the new thread participates in the
/// schedule (it starts parked and runs only when the scheduler picks it);
/// outside, this is `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match sched::current() {
        None => JoinHandle(Inner::Std(std::thread::spawn(f))),
        Some((exec, me)) => {
            let tid = exec.register_thread();
            let result = Arc::new(StdMutex::new(None));
            let thread_result = Arc::clone(&result);
            let thread_exec = Arc::clone(&exec);
            std::thread::Builder::new()
                .name(format!("flodb-check-{tid}"))
                .spawn(move || {
                    sched::set_current(Some((Arc::clone(&thread_exec), tid)));
                    thread_exec.initial_park(tid);
                    let outcome = panic::catch_unwind(AssertUnwindSafe(f));
                    let (stored, panic_msg) = match outcome {
                        Ok(v) => (Ok(v), None),
                        Err(p) => {
                            let msg = sched::panic_message(&*p);
                            (Err(p), Some(msg))
                        }
                    };
                    *thread_result
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner) = Some(stored);
                    thread_exec.thread_finished(tid, panic_msg);
                    sched::set_current(None);
                })
                .expect("spawn model thread");
            // Give the scheduler a chance to run the child before the
            // parent's next step.
            exec.op_point(me, "thread::spawn", tid);
            JoinHandle(Inner::Model { exec, tid, result })
        }
    }
}
