//! Self-tests for the model checker: it must find planted races and
//! deadlocks, prove correct code correct, stay deterministic, and replay
//! failures exactly. These run in the normal test suite (no special cfg) —
//! the checker itself is always buildable.

use std::time::Duration;

use flodb_check::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use flodb_check::sync::{Arc, Condvar, Mutex};
use flodb_check::{Builder, FailureKind};

/// Two threads do a non-atomic increment (load, then store). The lost
/// update violates the final assertion under some interleaving; DFS with
/// one preemption must find it.
fn racy_increment_body() {
    let n = Arc::new(AtomicU64::new(0));
    let n2 = Arc::clone(&n);
    let t = flodb_check::thread::spawn(move || {
        let v = n2.load(Ordering::SeqCst);
        n2.store(v + 1, Ordering::SeqCst);
    });
    let v = n.load(Ordering::SeqCst);
    n.store(v + 1, Ordering::SeqCst);
    t.join().unwrap();
    assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn dfs_finds_lost_update() {
    let failure = Builder::dfs(2)
        .check(racy_increment_body)
        .expect_err("the lost update must be found");
    assert!(
        matches!(failure.kind, FailureKind::Panic(ref m) if m.contains("lost update")),
        "unexpected failure: {failure}"
    );
}

#[test]
fn random_finds_lost_update() {
    let failure = Builder::new()
        .iterations(200)
        .seed(7)
        .check(racy_increment_body)
        .expect_err("the lost update must be found");
    assert!(matches!(failure.kind, FailureKind::Panic(_)));
}

#[test]
fn same_seed_same_schedule() {
    let run = || {
        Builder::new()
            .iterations(200)
            .seed(42)
            .check(racy_increment_body)
            .expect_err("race must be found")
    };
    let a = run();
    let b = run();
    assert_eq!(a.iteration, b.iteration, "determinism: same iteration");
    assert_eq!(a.schedule, b.schedule, "determinism: same schedule");
}

#[test]
fn replay_reproduces_failure() {
    let failure = Builder::dfs(2)
        .check(racy_increment_body)
        .expect_err("race must be found");
    let replayed = Builder::replay(failure.schedule.clone())
        .check(racy_increment_body)
        .expect_err("replaying the failing schedule must fail again");
    assert!(matches!(replayed.kind, FailureKind::Panic(_)));
}

#[test]
fn atomic_increment_passes_exhaustively() {
    let report = Builder::dfs(2)
        .check(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = flodb_check::thread::spawn(move || {
                n2.fetch_add(1, Ordering::SeqCst);
            });
            n.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 2);
        })
        .expect("fetch_add increments never race");
    assert!(report.exhausted, "small body should be fully explored");
}

#[test]
fn mutex_protected_increment_passes() {
    Builder::dfs(2)
        .check(|| {
            let n = Arc::new(Mutex::new(0u64));
            let n2 = Arc::clone(&n);
            let t = flodb_check::thread::spawn(move || {
                *n2.lock() += 1;
            });
            *n.lock() += 1;
            t.join().unwrap();
            assert_eq!(*n.lock(), 2);
        })
        .expect("mutex-protected increments never race");
}

/// Classic ABBA lock-order inversion; DFS must report a deadlock.
#[test]
fn dfs_finds_abba_deadlock() {
    let failure = Builder::dfs(2)
        .check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = flodb_check::thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop((_ga, _gb));
            t.join().unwrap();
        })
        .expect_err("ABBA inversion must deadlock under some schedule");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock),
        "expected deadlock, got: {failure}"
    );
}

/// A spin-wait on a flag set by another thread: yield deprioritization
/// must keep this from livelocking the serial scheduler.
#[test]
fn yield_loop_terminates() {
    Builder::dfs(1)
        .check(|| {
            let flag = Arc::new(AtomicBool::new(false));
            let f2 = Arc::clone(&flag);
            let t = flodb_check::thread::spawn(move || {
                f2.store(true, Ordering::SeqCst);
            });
            while !flag.load(Ordering::SeqCst) {
                flodb_check::thread::yield_now();
            }
            t.join().unwrap();
        })
        .expect("spin-on-flag must converge via yield deprioritization");
}

/// Condvar handshake: consumer waits for the producer's notify.
#[test]
fn condvar_handshake_passes() {
    Builder::dfs(2)
        .check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = flodb_check::thread::spawn(move || {
                let (lock, cv) = &*p2;
                *lock.lock() = true;
                cv.notify_one();
            });
            let (lock, cv) = &*pair;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            assert!(*ready);
            drop(ready);
            t.join().unwrap();
        })
        .expect("condvar handshake must always complete");
}

/// A timed wait that nothing will signal: the model fires the timeout
/// (instead of deadlocking) exactly because no other thread can run.
#[test]
fn timed_wait_fires_model_timeout() {
    Builder::dfs(1)
        .check(|| {
            let lock = Mutex::new(());
            let cv = Condvar::new();
            let mut g = lock.lock();
            let res = cv.wait_for(&mut g, Duration::from_millis(5));
            assert!(res.timed_out(), "nobody signals: the wait must time out");
        })
        .expect("timed wait must not be reported as a deadlock");
}

/// An untimed wait that nothing will signal must be reported as deadlock.
#[test]
fn orphan_wait_is_deadlock() {
    let failure = Builder::dfs(1)
        .check(|| {
            let lock = Mutex::new(());
            let cv = Condvar::new();
            let mut g = lock.lock();
            cv.wait(&mut g);
        })
        .expect_err("waiting forever with no notifier is a deadlock");
    assert!(matches!(failure.kind, FailureKind::Deadlock));
}

/// Primitives pass through to std outside a model run.
#[test]
fn passthrough_outside_model() {
    let n = AtomicU64::new(1);
    assert_eq!(n.fetch_add(1, Ordering::SeqCst), 1);
    let m = Mutex::new(3);
    assert_eq!(*m.lock(), 3);
    assert!(m.try_lock().is_some());
    let t = flodb_check::thread::spawn(|| 7);
    assert_eq!(t.join().unwrap(), 7);
    flodb_check::thread::yield_now();
    flodb_check::hint::spin_loop();
}

/// try_lock on a model mutex held by another thread fails instead of
/// blocking.
#[test]
fn try_lock_contention() {
    Builder::dfs(2)
        .check(|| {
            let m = Arc::new(Mutex::new(0u32));
            let m2 = Arc::clone(&m);
            let g = m.lock();
            let t = flodb_check::thread::spawn(move || m2.try_lock().is_none());
            let contended = t.join().unwrap();
            drop(g);
            assert!(contended, "lock was held across the child's whole life");
        })
        .expect("try_lock under contention must fail, not deadlock");
}
