//! Rule `safety-comment`: every `unsafe` block, function, impl, or trait
//! must be annotated with a `// SAFETY:` comment (or a `# Safety` doc
//! section) justifying why its obligations hold. Applies to the whole
//! file, tests included (unsafe in tests still needs justifying).

use std::path::Path;

use crate::common::{code_portion, comment_portion, contains_word, is_comment_or_attr};
use crate::rules::{Finding, Rule};

/// Does the contiguous comment/attribute block ending at `line_idx - 1`
/// (0-based) — or the line itself — carry a SAFETY justification?
fn has_safety_annotation(lines: &[&str], line_idx: usize) -> bool {
    let marker = |l: &str| l.contains("SAFETY:") || l.contains("# Safety");
    if marker(comment_portion(lines[line_idx])) {
        return true;
    }
    let mut i = line_idx;
    while i > 0 && is_comment_or_attr(lines[i - 1]) {
        i -= 1;
        if marker(lines[i]) {
            return true;
        }
    }
    false
}

/// Checks one file for unannotated `unsafe` sites.
pub fn check_safety_comments(file: &Path, content: &str) -> Vec<Finding> {
    let lines: Vec<&str> = content.lines().collect();
    let mut findings = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        let code = code_portion(raw);
        if !contains_word(&code, "unsafe") {
            continue;
        }
        if !has_safety_annotation(&lines, idx) {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: Rule::SafetyComment,
                message: "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc \
                          section) justifying its obligations"
                    .to_string(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safety_annotation_lookup() {
        let ok = "// SAFETY: ptr is valid\nunsafe { *p }\n";
        assert!(check_safety_comments(Path::new("x.rs"), ok).is_empty());
        let same_line = "unsafe { *p } // SAFETY: ptr is valid\n";
        assert!(check_safety_comments(Path::new("x.rs"), same_line).is_empty());
        let doc = "/// # Safety\n/// p must be valid\npub unsafe fn f(p: *const u8) {}\n";
        assert!(check_safety_comments(Path::new("x.rs"), doc).is_empty());
        let bad = "let x = 0;\nunsafe { *p }\n";
        assert_eq!(check_safety_comments(Path::new("x.rs"), bad).len(), 1);
    }
}
