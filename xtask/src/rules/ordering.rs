//! Rule `seqcst-ordering`: every `Ordering::SeqCst` in modeled-crate
//! production code must carry an `// ORDERING:` justification comment on
//! the same line or in the comment block directly above — or be
//! downgraded to the weakest ordering that is actually required.
//!
//! `SeqCst` is the "when in doubt" ordering: it hides the real
//! synchronization argument and costs a full fence on weakly-ordered
//! hardware. Sites that genuinely need a single total order (Dekker-style
//! flag protocols, cross-variable orderings) keep it and say why; sites
//! that only need a monotonic counter or a paired release/acquire get
//! downgraded. Test code (from the first `#[cfg(test)]` line on) is
//! exempt — tests reach for `SeqCst` as the conservative default and
//! prove nothing about the production memory model.

use std::path::Path;

use crate::common::{code_portion, line_has_marker};
use crate::rules::{Finding, Rule};

/// Checks one file for unjustified `SeqCst` orderings.
pub fn check_seqcst_ordering(file: &Path, content: &str) -> Vec<Finding> {
    let lines: Vec<&str> = content.lines().collect();
    let mut findings = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let code = code_portion(raw);
        if !code.contains("SeqCst") {
            continue;
        }
        if !line_has_marker(&lines, idx, "ORDERING:") {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: Rule::SeqCstOrdering,
                message: "`Ordering::SeqCst` without an `// ORDERING:` justification; \
                          explain why a total order is required, or downgrade to the \
                          weakest sufficient ordering"
                    .to_string(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqcst_needs_justification() {
        let bad = "self.flag.store(true, Ordering::SeqCst);\n";
        let findings = check_seqcst_ordering(Path::new("x.rs"), bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::SeqCstOrdering);

        let same_line =
            "self.flag.store(true, Ordering::SeqCst); // ORDERING: Dekker with is_paused\n";
        assert!(check_seqcst_ordering(Path::new("x.rs"), same_line).is_empty());

        let above = "// ORDERING: must totally order with the phase flip\n\
                     self.counts[p].fetch_add(1, Ordering::SeqCst);\n";
        assert!(check_seqcst_ordering(Path::new("x.rs"), above).is_empty());

        // Weaker orderings never fire.
        let relaxed = "self.ticks.fetch_add(1, Ordering::Relaxed);\n";
        assert!(check_seqcst_ordering(Path::new("x.rs"), relaxed).is_empty());

        // Test code is exempt.
        let in_tests = "#[cfg(test)]\nmod tests {\n    fn t() { f.store(true, Ordering::SeqCst); }\n}\n";
        assert!(check_seqcst_ordering(Path::new("x.rs"), in_tests).is_empty());

        // Doc comments are not code.
        let doc = "/// uses Ordering::SeqCst internally\nfn f() {}\n";
        assert!(check_seqcst_ordering(Path::new("x.rs"), doc).is_empty());
    }
}
