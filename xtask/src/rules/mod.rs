//! The per-rule lint passes behind `cargo xtask lint`.
//!
//! Each module owns one rule; the crate root's [`crate::run_lint`] wires
//! them over their respective scopes. See the crate docs for the rule
//! catalogue.

pub mod env_unwrap;
pub mod ordering;
pub mod panic;
pub mod safety;
pub mod shim;

use std::fmt;
use std::path::PathBuf;

/// Which lint rule produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// An `unsafe` site without a `// SAFETY:` / `# Safety` annotation.
    SafetyComment,
    /// A raw `std::sync`/`parking_lot`/`std::thread` use in a crate that
    /// must route through `flodb_sync::shim`.
    RawSync,
    /// An unwaived `.unwrap()`/`.expect(` in `crates/core` production code.
    WritePathPanic,
    /// An unwaived `.unwrap()`/`.expect(` on an `Env`-surface result in
    /// storage or core production code.
    EnvUnwrap,
    /// An `Ordering::SeqCst` in modeled-crate production code without an
    /// `ORDERING:` justification comment.
    SeqCstOrdering,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::SafetyComment => write!(f, "safety-comment"),
            Rule::RawSync => write!(f, "raw-sync"),
            Rule::WritePathPanic => write!(f, "write-path-panic"),
            Rule::EnvUnwrap => write!(f, "env-unwrap"),
            Rule::SeqCstOrdering => write!(f, "seqcst-ordering"),
        }
    }
}

/// One lint violation: file, 1-based line, rule, and a human message.
#[derive(Debug)]
pub struct Finding {
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}
