//! Rule `env-unwrap`: no `.unwrap()` / `.expect(` on the result of an
//! `Env`-surface call in `crates/storage` or `crates/core` production
//! code, `// PANIC-OK:` waivable. Every one of these calls is a
//! fault-injection point (see `flodb_storage::fault`): a panic there
//! turns an injectable, recoverable I/O error into an abort the
//! resilience sweep can never exercise.

use std::path::Path;

use crate::common::code_portion;
use crate::rules::panic::panic_waived;
use crate::rules::{Finding, Rule};

/// The `Env`-surface calls this rule guards: each returns a `Result` whose
/// failure the fault layer can inject, so panicking on it forecloses the
/// resilience sweep. Method-call spellings (leading `.`) where the bare
/// name would collide with unrelated functions.
const ENV_RESULT_CALLS: &[&str] = &[
    "new_writable(",
    "open_random(",
    "sync_dir(",
    "read_at(",
    ".delete(",
    ".list(",
];

/// Checks one file for panics on `Env`-surface results.
pub fn check_env_unwraps(file: &Path, content: &str) -> Vec<Finding> {
    let lines: Vec<&str> = content.lines().collect();
    let mut findings = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let code = code_portion(raw);
        if !code.contains(".unwrap()") && !code.contains(".expect(") {
            continue;
        }
        let Some(call) = ENV_RESULT_CALLS.iter().find(|c| code.contains(*c)) else {
            continue;
        };
        if !panic_waived(&lines, idx) {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: Rule::EnvUnwrap,
                message: format!(
                    "`.unwrap()`/`.expect()` on `{}...)` — an injectable I/O fault \
                     point; propagate the error, or waive with `// PANIC-OK: <why>`",
                    call.trim_start_matches('.')
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_unwrap_rule() {
        // Unwrapping an Env-surface result fires.
        let bad = "let f = env.new_writable(\"x.log\").unwrap();\n";
        let findings = check_env_unwraps(Path::new("x.rs"), bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::EnvUnwrap);
        let bad2 = "let data = file.read_at(0, len).expect(\"read\");\n";
        assert_eq!(check_env_unwraps(Path::new("x.rs"), bad2).len(), 1);
        // Non-Env unwraps are rule 3's business, not this rule's.
        let other = "let v = map.get(k).unwrap();\n";
        assert!(check_env_unwraps(Path::new("x.rs"), other).is_empty());
        // Waivers and the test boundary apply as in rule 3.
        let waived = "let f = env.sync_dir().unwrap(); // PANIC-OK: startup only\n";
        assert!(check_env_unwraps(Path::new("x.rs"), waived).is_empty());
        let in_tests =
            "#[cfg(test)]\nmod tests {\n    fn t() { env.open_random(\"f\").unwrap(); }\n}\n";
        assert!(check_env_unwraps(Path::new("x.rs"), in_tests).is_empty());
        // Doc-comment examples are comments, not code.
        let doc = "/// env.new_writable(\"f\").unwrap();\nfn f() {}\n";
        assert!(check_env_unwraps(Path::new("x.rs"), doc).is_empty());
        // Method-call spellings don't fire on unrelated bare names.
        let unrelated = "self.pending.list().unwrap();\n";
        assert_eq!(check_env_unwraps(Path::new("x.rs"), unrelated).len(), 1);
        let not_env = "let d = to_delete(x).unwrap();\n";
        assert!(check_env_unwraps(Path::new("x.rs"), not_env).is_empty());
    }
}
