//! Rule `write-path-panic`: no `.unwrap()` / `.expect(` in `crates/core`
//! production code unless the line carries a `// PANIC-OK:` waiver
//! explaining why panicking is acceptable (the write path must surface
//! failures as `WriteError`, never abort a caller holding store state).
//! Test code (from the first `#[cfg(test)]` line on) is exempt.

use std::path::Path;

use crate::common::{code_portion, line_has_marker};
use crate::rules::{Finding, Rule};

/// Is the panic at `line_idx` waived by a `// PANIC-OK:` marker on the
/// same line or in the comment/attribute block directly above?
pub(crate) fn panic_waived(lines: &[&str], line_idx: usize) -> bool {
    line_has_marker(lines, line_idx, "PANIC-OK:")
}

/// Checks one file for unwaived panics in production code.
pub fn check_write_path_panics(file: &Path, content: &str) -> Vec<Finding> {
    let lines: Vec<&str> = content.lines().collect();
    let mut findings = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let code = code_portion(raw);
        if !code.contains(".unwrap()") && !code.contains(".expect(") {
            continue;
        }
        if !panic_waived(&lines, idx) {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: Rule::WritePathPanic,
                message: "`.unwrap()`/`.expect()` in flodb-core production code; \
                          return a typed error, or waive with `// PANIC-OK: <why>`"
                    .to_string(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_waivers() {
        let bad = "let v = map.get(k).unwrap();\n";
        assert_eq!(check_write_path_panics(Path::new("x.rs"), bad).len(), 1);
        let ok = "let v = map.get(k).unwrap(); // PANIC-OK: key inserted above\n";
        assert!(check_write_path_panics(Path::new("x.rs"), ok).is_empty());
        let above = "// PANIC-OK: key inserted above\nlet v = map.get(k).unwrap();\n";
        assert!(check_write_path_panics(Path::new("x.rs"), above).is_empty());
    }
}
