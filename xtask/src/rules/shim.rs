//! Rule `raw-sync`: no `std::sync` / `parking_lot` / `std::thread`
//! primitive may be used directly inside the facade-scoped crates; all
//! synchronization must go through the `flodb_sync::shim` facade so that
//! `--cfg flodb_model` coverage cannot silently rot as code evolves.
//! Test code (from the first `#[cfg(test)]` line on) is exempt.

use std::path::Path;

use crate::common::code_portion;
use crate::rules::{Finding, Rule};

/// The substrings this rule bans from facade-scoped crates. `shim.rs`
/// itself is the one place allowed to name the real primitives.
const RAW_SYNC_PATTERNS: &[&str] = &[
    "std::sync",
    "core::sync",
    "parking_lot",
    "std::thread",
    "std::hint::spin_loop",
];

/// Checks one file for raw synchronization-primitive uses.
pub fn check_raw_sync(file: &Path, content: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, raw) in content.lines().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let code = code_portion(raw);
        for pat in RAW_SYNC_PATTERNS {
            if code.contains(pat) {
                findings.push(Finding {
                    file: file.to_path_buf(),
                    line: idx + 1,
                    rule: Rule::RawSync,
                    message: format!(
                        "raw `{pat}` in a facade-scoped crate; use `flodb_sync::shim` \
                         (or `crate::shim` inside flodb-sync) so `--cfg flodb_model` \
                         instruments it"
                    ),
                });
                break;
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_sync_respects_test_boundary() {
        let src = "use crate::shim::Mutex;\n#[cfg(test)]\nmod tests { use std::sync::Arc; }\n";
        assert!(check_raw_sync(Path::new("x.rs"), src).is_empty());
        let bad = "use std::sync::Mutex;\n";
        assert_eq!(check_raw_sync(Path::new("x.rs"), bad).len(), 1);
    }
}
