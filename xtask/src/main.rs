//! `cargo xtask <command>` — workspace automation entry point.
//!
//! Commands:
//! - `lint` — run the static lint pass (see the crate docs of the
//!   `xtask` library for the rules). Exits non-zero on any finding.
//! - `locks` — run the whole-workspace lock-order analysis against
//!   `LOCK_ORDER.toml`. Exits non-zero on any violation.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // The binary lives at <root>/xtask; CARGO_MANIFEST_DIR is baked in at
    // compile time, which is fine for a tool that only runs in-tree.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits one level below the workspace root")
        .to_path_buf()
}

fn rel(root: &Path, file: &Path) -> String {
    // Findings print with paths relative to the root so CI logs stay
    // readable regardless of checkout location.
    file.strip_prefix(root).unwrap_or(file).display().to_string()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = workspace_root();
            let findings = xtask::run_lint(&root);
            if findings.is_empty() {
                eprintln!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    eprintln!("{}:{}: [{}] {}", rel(&root, &f.file), f.line, f.rule, f.message);
                }
                eprintln!("xtask lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Some("locks") => {
            let root = workspace_root();
            match xtask::locks::run_locks(&root) {
                Err(e) => {
                    eprintln!("xtask locks: {e}");
                    ExitCode::FAILURE
                }
                Ok(findings) if findings.is_empty() => {
                    eprintln!("xtask locks: hierarchy consistent");
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for f in &findings {
                        eprintln!("{}:{}: [lock-order] {}", rel(&root, &f.file), f.line, f.message);
                    }
                    eprintln!("xtask locks: {} finding(s)", findings.len());
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!(
                "usage: cargo xtask <lint|locks>\n  (unknown command: {:?})",
                other.unwrap_or("<none>")
            );
            ExitCode::FAILURE
        }
    }
}
