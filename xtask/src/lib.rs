//! Static analysis passes for the FloDB workspace.
//!
//! Two commands share this library:
//!
//! * `cargo xtask lint` — five line-based rules ([`run_lint`]), one per
//!   module under [`rules`]:
//!   1. **`safety-comment`** — every `unsafe` site needs a `// SAFETY:`
//!      comment or `# Safety` doc section.
//!   2. **`raw-sync`** — no raw `std::sync`/`parking_lot`/`std::thread`
//!      primitives in facade-scoped crates; everything routes through
//!      `flodb_sync::shim` so `--cfg flodb_model` coverage cannot rot.
//!   3. **`write-path-panic`** — no unwaived `.unwrap()`/`.expect(` in
//!      `crates/core` production code (`// PANIC-OK:` waivable).
//!   4. **`env-unwrap`** — no panicking on `Env`-surface results in
//!      storage/core production code; every such call is a
//!      fault-injection point.
//!   5. **`seqcst-ordering`** — `Ordering::SeqCst` in modeled-crate
//!      production code needs an `// ORDERING:` justification or a
//!      downgrade to the weakest sufficient ordering.
//! * `cargo xtask locks` — the whole-workspace lock-order analysis
//!   ([`locks::run_locks`]): lock-site extraction, the declared hierarchy
//!   in `LOCK_ORDER.toml`, rank/cycle/blocking checks, and the
//!   static-vs-runtime staleness cross-check.
//!
//! The scanners are deliberately line-based and syntactic — comments and
//! string literals are stripped with a small state machine ([`common`]),
//! never a full parser. Test code (everything from the first
//! `#[cfg(test)]` line onward, per the repo convention of keeping test
//! modules last) is exempt from every rule except `safety-comment`.

pub mod common;
pub mod locks;
pub mod rules;

use std::path::{Path, PathBuf};

pub use rules::env_unwrap::check_env_unwraps;
pub use rules::ordering::check_seqcst_ordering;
pub use rules::panic::check_write_path_panics;
pub use rules::safety::check_safety_comments;
pub use rules::shim::check_raw_sync;
pub use rules::{Finding, Rule};

use common::scan;

/// Runs all five lint rules over the workspace rooted at `root` and
/// returns every finding, sorted by file and line.
pub fn run_lint(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Rule 1 scope: all first-party code plus the two third_party shims
    // that contain unsafe (crossbeam-epoch, flodb-check). The remaining
    // third_party shims mirror upstream APIs and are audited on import.
    let mut safety_files = Vec::new();
    for rel in [
        "crates",
        "src",
        "tests",
        "examples",
        "third_party/crossbeam-epoch/src",
        "third_party/flodb-check/src",
    ] {
        scan(root, rel, &mut safety_files);
    }
    for_each_file(&safety_files, &mut findings, check_safety_comments);

    // Rule 2 scope: the facade-routed crates. shim.rs is the facade.
    let mut sync_files = Vec::new();
    for rel in ["crates/sync/src", "crates/membuffer/src", "crates/memtable/src"] {
        scan(root, rel, &mut sync_files);
    }
    sync_files.retain(|f| f.file_name().is_none_or(|n| n != "shim.rs"));
    for_each_file(&sync_files, &mut findings, check_raw_sync);

    // Rule 3 scope: flodb-core production code.
    let mut core_files = Vec::new();
    scan(root, "crates/core/src", &mut core_files);
    for_each_file(&core_files, &mut findings, check_write_path_panics);

    // Rule 4 scope: every crate that calls the Env surface directly.
    // (Core is also covered by rule 3; here the rule adds the storage
    // crate, where blanket rule 3 would flood non-Env unwraps.)
    let mut env_files = Vec::new();
    for rel in ["crates/storage/src", "crates/core/src"] {
        scan(root, rel, &mut env_files);
    }
    for_each_file(&env_files, &mut findings, check_env_unwraps);

    // Rule 5 scope: the same modeled crates the locks pass covers — the
    // crates whose memory-ordering story the model checker and the lock
    // hierarchy are supposed to document.
    let mut ordering_files = Vec::new();
    for rel in locks::MODELED_CRATES {
        scan(root, rel, &mut ordering_files);
    }
    for_each_file(&ordering_files, &mut findings, check_seqcst_ordering);

    findings.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    findings
}

fn for_each_file(
    files: &[PathBuf],
    findings: &mut Vec<Finding>,
    rule: fn(&Path, &str) -> Vec<Finding>,
) {
    for file in files {
        if let Ok(content) = std::fs::read_to_string(file) {
            findings.extend(rule(file, &content));
        }
    }
}
