//! Static lint pass for the FloDB workspace (`cargo xtask lint`).
//!
//! Three rules, each guarding an invariant the compiler cannot see:
//!
//! 1. **`safety-comment`** — every `unsafe` block, function, impl, or
//!    trait must be annotated with a `// SAFETY:` comment (or a
//!    `# Safety` doc section) justifying why its obligations hold.
//! 2. **`raw-sync`** — no `std::sync` / `parking_lot` / `std::thread`
//!    primitive may be used directly inside `crates/sync`,
//!    `crates/membuffer`, or `crates/memtable`; all synchronization must
//!    go through the `flodb_sync::shim` facade so that `--cfg
//!    flodb_model` coverage cannot silently rot as code evolves.
//! 3. **`write-path-panic`** — no `.unwrap()` / `.expect(` in
//!    `crates/core` production code unless the line carries a
//!    `// PANIC-OK:` waiver explaining why panicking is acceptable
//!    (the write path must surface failures as `WriteError`, never
//!    abort a caller holding store state).
//! 4. **`env-unwrap`** — no `.unwrap()` / `.expect(` on the result of an
//!    `Env`-surface call (`new_writable`, `open_random`, `sync_dir`,
//!    `read_at`, `.delete`, `.list`) in `crates/storage` or `crates/core`
//!    production code, `// PANIC-OK:` waivable. Every one of these calls
//!    is a fault-injection point (see `flodb_storage::fault`): a panic
//!    there turns an injectable, recoverable I/O error into an abort the
//!    resilience sweep can never exercise.
//!
//! The scanner is deliberately line-based and syntactic — it strips
//! comments and string literals with a small state machine rather than
//! parsing Rust. Test code is exempt from rules 2 and 3: the repo
//! convention keeps `#[cfg(test)] mod tests` as the final item of a
//! file, so everything from the first `#[cfg(test)]` line onward is
//! treated as test code. Rule 1 applies to tests too (unsafe in tests
//! still needs justifying).

use std::fmt;
use std::path::{Path, PathBuf};

/// Which lint rule produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// An `unsafe` site without a `// SAFETY:` / `# Safety` annotation.
    SafetyComment,
    /// A raw `std::sync`/`parking_lot`/`std::thread` use in a crate that
    /// must route through `flodb_sync::shim`.
    RawSync,
    /// An unwaived `.unwrap()`/`.expect(` in `crates/core` production code.
    WritePathPanic,
    /// An unwaived `.unwrap()`/`.expect(` on an `Env`-surface result in
    /// storage or core production code.
    EnvUnwrap,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::SafetyComment => write!(f, "safety-comment"),
            Rule::RawSync => write!(f, "raw-sync"),
            Rule::WritePathPanic => write!(f, "write-path-panic"),
            Rule::EnvUnwrap => write!(f, "env-unwrap"),
        }
    }
}

/// One lint violation: file, 1-based line, rule, and a human message.
#[derive(Debug)]
pub struct Finding {
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Returns the code portion of a line: string/char literals blanked out,
/// everything from the first `//` (outside a literal) dropped. Multi-line
/// literals are not tracked; none of the patterns we search for span them.
fn code_portion(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut in_char = false;
    while let Some(c) = chars.next() {
        if in_str {
            if c == '\\' {
                chars.next();
            } else if c == '"' {
                in_str = false;
            }
            out.push(' ');
        } else if in_char {
            if c == '\\' {
                chars.next();
            } else if c == '\'' {
                in_char = false;
            }
            out.push(' ');
        } else {
            match c {
                '"' => {
                    in_str = true;
                    out.push(' ');
                }
                // A lifetime tick (`&'a`, `<'_>`) is followed by an
                // identifier char then no closing quote; a char literal
                // closes within a couple of chars. Treat as a literal
                // only when a closing quote appears nearby.
                '\'' => {
                    let mut lookahead = chars.clone();
                    let mut is_char = false;
                    if let Some(n1) = lookahead.next() {
                        if n1 == '\\' {
                            is_char = true;
                        } else if let Some(n2) = lookahead.next() {
                            is_char = n2 == '\'';
                        }
                    }
                    if is_char {
                        in_char = true;
                        out.push(' ');
                    } else {
                        out.push(c);
                    }
                }
                '/' if chars.peek() == Some(&'/') => break,
                _ => out.push(c),
            }
        }
    }
    out
}

/// Returns the comment portion of a line (text after `//` outside a
/// string), or `""` if the line has no comment.
fn comment_portion(line: &str) -> &str {
    let code = code_portion(line);
    // code_portion stops at the comment start, so the comment begins at
    // the first byte past what survived (if the raw line is longer).
    if code.len() < line.len() {
        &line[code.len()..]
    } else {
        ""
    }
}

/// True if `hay` contains `needle` as a standalone word (not flanked by
/// identifier characters), e.g. `unsafe` but not `unsafe_op_in_unsafe_fn`.
fn contains_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

fn is_comment_or_attr(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![") || t.starts_with(')')
}

/// Does the contiguous comment/attribute block ending at `line_idx - 1`
/// (0-based) — or the line itself — carry a SAFETY justification?
fn has_safety_annotation(lines: &[&str], line_idx: usize) -> bool {
    let marker = |l: &str| l.contains("SAFETY:") || l.contains("# Safety");
    if marker(comment_portion(lines[line_idx])) {
        return true;
    }
    let mut i = line_idx;
    while i > 0 && is_comment_or_attr(lines[i - 1]) {
        i -= 1;
        if marker(lines[i]) {
            return true;
        }
    }
    false
}

/// Rule 1: every `unsafe` site needs a SAFETY annotation. Applies to the
/// whole file, tests included.
pub fn check_safety_comments(file: &Path, content: &str) -> Vec<Finding> {
    let lines: Vec<&str> = content.lines().collect();
    let mut findings = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        let code = code_portion(raw);
        if !contains_word(&code, "unsafe") {
            continue;
        }
        if !has_safety_annotation(&lines, idx) {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: Rule::SafetyComment,
                message: "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc \
                          section) justifying its obligations"
                    .to_string(),
            });
        }
    }
    findings
}

/// The substrings rule 2 bans from facade-scoped crates. `shim.rs` itself
/// is the one place allowed to name the real primitives.
const RAW_SYNC_PATTERNS: &[&str] = &[
    "std::sync",
    "core::sync",
    "parking_lot",
    "std::thread",
    "std::hint::spin_loop",
];

/// Rule 2: no raw synchronization primitives outside the facade.
/// Test code (from the first `#[cfg(test)]` line on) is exempt.
pub fn check_raw_sync(file: &Path, content: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, raw) in content.lines().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let code = code_portion(raw);
        for pat in RAW_SYNC_PATTERNS {
            if code.contains(pat) {
                findings.push(Finding {
                    file: file.to_path_buf(),
                    line: idx + 1,
                    rule: Rule::RawSync,
                    message: format!(
                        "raw `{pat}` in a facade-scoped crate; use `flodb_sync::shim` \
                         (or `crate::shim` inside flodb-sync) so `--cfg flodb_model` \
                         instruments it"
                    ),
                });
                break;
            }
        }
    }
    findings
}

/// Is the panic at `line_idx` waived by a `// PANIC-OK:` marker on the
/// same line or in the comment/attribute block directly above?
fn panic_waived(lines: &[&str], line_idx: usize) -> bool {
    if comment_portion(lines[line_idx]).contains("PANIC-OK:") {
        return true;
    }
    let mut i = line_idx;
    while i > 0 && is_comment_or_attr(lines[i - 1]) {
        i -= 1;
        if lines[i].contains("PANIC-OK:") {
            return true;
        }
    }
    false
}

/// Rule 3: `.unwrap()`/`.expect(` in flodb-core production code must carry
/// a `// PANIC-OK:` waiver on the same line or the comment block above.
/// Test code (from the first `#[cfg(test)]` line on) is exempt.
pub fn check_write_path_panics(file: &Path, content: &str) -> Vec<Finding> {
    let lines: Vec<&str> = content.lines().collect();
    let mut findings = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let code = code_portion(raw);
        if !code.contains(".unwrap()") && !code.contains(".expect(") {
            continue;
        }
        if !panic_waived(&lines, idx) {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: Rule::WritePathPanic,
                message: "`.unwrap()`/`.expect()` in flodb-core production code; \
                          return a typed error, or waive with `// PANIC-OK: <why>`"
                    .to_string(),
            });
        }
    }
    findings
}

/// The `Env`-surface calls rule 4 guards: each returns a `Result` whose
/// failure the fault layer can inject, so panicking on it forecloses the
/// resilience sweep. Method-call spellings (leading `.`) where the bare
/// name would collide with unrelated functions.
const ENV_RESULT_CALLS: &[&str] = &[
    "new_writable(",
    "open_random(",
    "sync_dir(",
    "read_at(",
    ".delete(",
    ".list(",
];

/// Rule 4: `.unwrap()`/`.expect(` on the same line as an `Env`-surface
/// call in storage/core production code, `// PANIC-OK:` waivable. Test
/// code (from the first `#[cfg(test)]` line on) is exempt.
pub fn check_env_unwraps(file: &Path, content: &str) -> Vec<Finding> {
    let lines: Vec<&str> = content.lines().collect();
    let mut findings = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let code = code_portion(raw);
        if !code.contains(".unwrap()") && !code.contains(".expect(") {
            continue;
        }
        let Some(call) = ENV_RESULT_CALLS.iter().find(|c| code.contains(*c)) else {
            continue;
        };
        if !panic_waived(&lines, idx) {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: idx + 1,
                rule: Rule::EnvUnwrap,
                message: format!(
                    "`.unwrap()`/`.expect()` on `{}...)` — an injectable I/O fault \
                     point; propagate the error, or waive with `// PANIC-OK: <why>`",
                    call.trim_start_matches('.')
                ),
            });
        }
    }
    findings
}

/// Recursively collects `.rs` files under `dir`, skipping `target/`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn scan(root: &Path, rel: &str, out: &mut Vec<PathBuf>) {
    let dir = root.join(rel);
    if dir.is_dir() {
        rust_files(&dir, out);
    }
}

/// Runs all three rules over the workspace rooted at `root` and returns
/// every finding, sorted by file and line.
pub fn run_lint(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Rule 1 scope: all first-party code plus the two third_party shims
    // that contain unsafe (crossbeam-epoch, flodb-check). The remaining
    // third_party shims mirror upstream APIs and are audited on import.
    let mut safety_files = Vec::new();
    for rel in [
        "crates",
        "src",
        "tests",
        "examples",
        "third_party/crossbeam-epoch/src",
        "third_party/flodb-check/src",
    ] {
        scan(root, rel, &mut safety_files);
    }
    for file in &safety_files {
        if let Ok(content) = std::fs::read_to_string(file) {
            findings.extend(check_safety_comments(file, &content));
        }
    }

    // Rule 2 scope: the facade-routed crates. shim.rs is the facade.
    let mut sync_files = Vec::new();
    for rel in ["crates/sync/src", "crates/membuffer/src", "crates/memtable/src"] {
        scan(root, rel, &mut sync_files);
    }
    for file in &sync_files {
        if file.file_name().is_some_and(|n| n == "shim.rs") {
            continue;
        }
        if let Ok(content) = std::fs::read_to_string(file) {
            findings.extend(check_raw_sync(file, &content));
        }
    }

    // Rule 3 scope: flodb-core production code.
    let mut core_files = Vec::new();
    scan(root, "crates/core/src", &mut core_files);
    for file in &core_files {
        if let Ok(content) = std::fs::read_to_string(file) {
            findings.extend(check_write_path_panics(file, &content));
        }
    }

    // Rule 4 scope: every crate that calls the Env surface directly.
    // (Core is also covered by rule 3; here the rule adds the storage
    // crate, where blanket rule 3 would flood non-Env unwraps.)
    let mut env_files = Vec::new();
    for rel in ["crates/storage/src", "crates/core/src"] {
        scan(root, rel, &mut env_files);
    }
    for file in &env_files {
        if let Ok(content) = std::fs::read_to_string(file) {
            findings.extend(check_env_unwraps(file, &content));
        }
    }

    findings.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_portion_strips_strings_and_comments() {
        assert_eq!(code_portion("let x = 1; // std::sync"), "let x = 1; ");
        assert!(!code_portion("let s = \"std::sync::Mutex\";").contains("std::sync"));
        assert!(code_portion("let c = 'a'; std::sync::X").contains("std::sync"));
        assert!(code_portion("fn f<'a>(x: &'a str) { unsafe {} }").contains("unsafe"));
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("unsafe {", "unsafe"));
        assert!(!contains_word("deny(unsafe_op_in_unsafe_fn)", "unsafe"));
        assert!(!contains_word("forbid(unsafe_code)", "unsafe"));
    }

    #[test]
    fn safety_annotation_lookup() {
        let ok = "// SAFETY: ptr is valid\nunsafe { *p }\n";
        assert!(check_safety_comments(Path::new("x.rs"), ok).is_empty());
        let same_line = "unsafe { *p } // SAFETY: ptr is valid\n";
        assert!(check_safety_comments(Path::new("x.rs"), same_line).is_empty());
        let doc = "/// # Safety\n/// p must be valid\npub unsafe fn f(p: *const u8) {}\n";
        assert!(check_safety_comments(Path::new("x.rs"), doc).is_empty());
        let bad = "let x = 0;\nunsafe { *p }\n";
        assert_eq!(check_safety_comments(Path::new("x.rs"), bad).len(), 1);
    }

    #[test]
    fn raw_sync_respects_test_boundary() {
        let src = "use crate::shim::Mutex;\n#[cfg(test)]\nmod tests { use std::sync::Arc; }\n";
        assert!(check_raw_sync(Path::new("x.rs"), src).is_empty());
        let bad = "use std::sync::Mutex;\n";
        assert_eq!(check_raw_sync(Path::new("x.rs"), bad).len(), 1);
    }

    #[test]
    fn panic_waivers() {
        let bad = "let v = map.get(k).unwrap();\n";
        assert_eq!(check_write_path_panics(Path::new("x.rs"), bad).len(), 1);
        let ok = "let v = map.get(k).unwrap(); // PANIC-OK: key inserted above\n";
        assert!(check_write_path_panics(Path::new("x.rs"), ok).is_empty());
        let above = "// PANIC-OK: key inserted above\nlet v = map.get(k).unwrap();\n";
        assert!(check_write_path_panics(Path::new("x.rs"), above).is_empty());
    }

    #[test]
    fn env_unwrap_rule() {
        // Unwrapping an Env-surface result fires.
        let bad = "let f = env.new_writable(\"x.log\").unwrap();\n";
        let findings = check_env_unwraps(Path::new("x.rs"), bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::EnvUnwrap);
        let bad2 = "let data = file.read_at(0, len).expect(\"read\");\n";
        assert_eq!(check_env_unwraps(Path::new("x.rs"), bad2).len(), 1);
        // Non-Env unwraps are rule 3's business, not this rule's.
        let other = "let v = map.get(k).unwrap();\n";
        assert!(check_env_unwraps(Path::new("x.rs"), other).is_empty());
        // Waivers and the test boundary apply as in rule 3.
        let waived = "let f = env.sync_dir().unwrap(); // PANIC-OK: startup only\n";
        assert!(check_env_unwraps(Path::new("x.rs"), waived).is_empty());
        let in_tests =
            "#[cfg(test)]\nmod tests {\n    fn t() { env.open_random(\"f\").unwrap(); }\n}\n";
        assert!(check_env_unwraps(Path::new("x.rs"), in_tests).is_empty());
        // Doc-comment examples are comments, not code.
        let doc = "/// env.new_writable(\"f\").unwrap();\nfn f() {}\n";
        assert!(check_env_unwraps(Path::new("x.rs"), doc).is_empty());
        // Method-call spellings don't fire on unrelated bare names.
        let unrelated = "self.pending.list().unwrap();\n";
        assert_eq!(check_env_unwraps(Path::new("x.rs"), unrelated).len(), 1);
        let not_env = "let d = to_delete(x).unwrap();\n";
        assert!(check_env_unwraps(Path::new("x.rs"), not_env).is_empty());
    }
}
