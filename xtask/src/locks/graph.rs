//! The lock-graph checks: rank coverage, hierarchy consistency,
//! cycle-freedom, undeclared edges, blocking-under-guard, and the
//! static/runtime staleness cross-check.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};

use crate::locks::extract::{BlockingHit, Decl, ObservedEdge};
use crate::locks::order::LockOrder;

/// One lock-order violation.
#[derive(Debug)]
pub struct LockFinding {
    /// File the violation is in (`LOCK_ORDER.toml` for declaration-side
    /// errors).
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl fmt::Display for LockFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [lock-order] {}", self.file.display(), self.line, self.message)
    }
}

/// An observed fact plus whether its site carries a `// LOCK-OK:` waiver.
pub struct Waivable<T> {
    /// The extracted fact.
    pub fact: T,
    /// Whether the acquisition line is waived.
    pub waived: bool,
}

/// Runs every check. `runtime_ranks` is the `(name, rank, line)` list
/// extracted from `crates/sync/src/lock_order.rs`.
pub fn check(
    order: &LockOrder,
    order_path: &Path,
    decls: &[Decl],
    edges: &[Waivable<ObservedEdge>],
    blocking: &[Waivable<BlockingHit>],
    runtime_ranks: &[(String, u32, usize)],
    runtime_path: &Path,
) -> Vec<LockFinding> {
    let mut findings = Vec::new();
    let site_to_class = order.site_to_class();

    // Duplicate class names make every later lookup ambiguous.
    let mut seen = HashSet::new();
    for c in &order.classes {
        if !seen.insert(c.name.as_str()) {
            findings.push(LockFinding {
                file: order_path.to_path_buf(),
                line: c.line,
                message: format!("duplicate [[class]] `{}`", c.name),
            });
        }
    }

    // Every extracted lock site must belong to exactly one ranked class.
    let declared_sites: HashSet<&str> = site_to_class.keys().copied().collect();
    for d in decls {
        if !declared_sites.contains(d.site.as_str()) {
            findings.push(LockFinding {
                file: d.file.clone(),
                line: d.line,
                message: format!(
                    "lock site `{}` ({:?}) has no ranked class in LOCK_ORDER.toml; \
                     add it to a [[class]] `sites` list",
                    d.site, d.kind
                ),
            });
        }
    }

    // Staleness, declaration side: a site listed in the TOML that no
    // longer exists in source means the hierarchy has drifted.
    let extracted: HashSet<&str> = decls.iter().map(|d| d.site.as_str()).collect();
    for c in &order.classes {
        for s in &c.sites {
            if !extracted.contains(s.as_str()) {
                findings.push(LockFinding {
                    file: order_path.to_path_buf(),
                    line: c.line,
                    message: format!(
                        "class `{}` lists site `{}` which no longer exists in the \
                         modeled crates; remove or rename it",
                        c.name, s
                    ),
                });
            }
        }
    }

    // Staleness, runtime side: the TOML hierarchy and the runtime
    // `LockClass` constants must agree exactly, both directions, with
    // equal ranks — otherwise the static gate and the debug-assertion
    // tracker enforce different orders.
    let runtime: HashMap<&str, (u32, usize)> = runtime_ranks
        .iter()
        .map(|(n, r, l)| (n.as_str(), (*r, *l)))
        .collect();
    for c in &order.classes {
        match runtime.get(c.name.as_str()) {
            None => findings.push(LockFinding {
                file: order_path.to_path_buf(),
                line: c.line,
                message: format!(
                    "class `{}` has no matching LockClass constant in {}; the \
                     declared rank is unreferenced by source",
                    c.name,
                    runtime_path.display()
                ),
            }),
            Some((rank, line)) if *rank != c.rank => findings.push(LockFinding {
                file: runtime_path.to_path_buf(),
                line: *line,
                message: format!(
                    "runtime rank {} for `{}` disagrees with LOCK_ORDER.toml rank {}",
                    rank, c.name, c.rank
                ),
            }),
            Some(_) => {}
        }
    }
    let toml_classes: HashSet<&str> = order.classes.iter().map(|c| c.name.as_str()).collect();
    for (name, _, line) in runtime_ranks {
        if !toml_classes.contains(name.as_str()) {
            findings.push(LockFinding {
                file: runtime_path.to_path_buf(),
                line: *line,
                message: format!(
                    "runtime LockClass `{name}` is not declared in LOCK_ORDER.toml"
                ),
            });
        }
    }

    // Declared edges: both endpoints must exist and ranks must ascend.
    let rank_of: HashMap<&str, u32> =
        order.classes.iter().map(|c| (c.name.as_str(), c.rank)).collect();
    for e in &order.edges {
        let (Some(&from), Some(&to)) = (rank_of.get(e.from.as_str()), rank_of.get(e.to.as_str()))
        else {
            findings.push(LockFinding {
                file: order_path.to_path_buf(),
                line: e.line,
                message: format!(
                    "edge `{}` -> `{}` references an undeclared class",
                    e.from, e.to
                ),
            });
            continue;
        };
        if from >= to {
            findings.push(LockFinding {
                file: order_path.to_path_buf(),
                line: e.line,
                message: format!(
                    "edge `{}` (rank {}) -> `{}` (rank {}) does not ascend; ranks \
                     must strictly increase along every acquisition edge",
                    e.from, from, e.to, to
                ),
            });
        }
    }

    // Cycle-freedom over the declared graph. With ascending ranks this is
    // implied, but the check stays independent so a future rank rework
    // cannot silently ship a cycle.
    if let Some(cycle) = find_cycle(order) {
        findings.push(LockFinding {
            file: order_path.to_path_buf(),
            line: 1,
            message: format!("declared lock graph has a cycle: {}", cycle.join(" -> ")),
        });
    }

    // Observed edges: must resolve to ranked classes, ascend, and be
    // declared (or waived in place).
    let declared_edges: HashSet<(&str, &str)> = order
        .edges
        .iter()
        .map(|e| (e.from.as_str(), e.to.as_str()))
        .collect();
    for w in edges {
        let e = &w.fact;
        let (Some(&held_class), Some(&acq_class)) = (
            site_to_class.get(e.held.as_str()),
            site_to_class.get(e.acquired.as_str()),
        ) else {
            // Unranked sites are already reported above.
            continue;
        };
        if w.waived {
            continue;
        }
        if held_class == acq_class {
            findings.push(LockFinding {
                file: e.file.clone(),
                line: e.line,
                message: format!(
                    "`{}` acquired while a guard of the same class `{}` is live; \
                     the shim mutex is not reentrant — this self-deadlocks",
                    e.acquired, held_class
                ),
            });
            continue;
        }
        let (hr, ar) = (rank_of[held_class], rank_of[acq_class]);
        if hr >= ar {
            findings.push(LockFinding {
                file: e.file.clone(),
                line: e.line,
                message: format!(
                    "`{}` (class `{}`, rank {}) acquired while holding `{}` (class \
                     `{}`, rank {}); ranks must ascend — restructure, or waive with \
                     `// LOCK-OK: <why>`",
                    e.acquired, acq_class, ar, e.held, held_class, hr
                ),
            });
        } else if !declared_edges.contains(&(held_class, acq_class)) {
            findings.push(LockFinding {
                file: e.file.clone(),
                line: e.line,
                message: format!(
                    "undeclared lock edge: `{held_class}` -> `{acq_class}`; add an \
                     [[edge]] with a `why` to LOCK_ORDER.toml, or waive with \
                     `// LOCK-OK: <why>`"
                ),
            });
        }
    }

    // Blocking calls under live guards.
    for w in blocking {
        if w.waived {
            continue;
        }
        let b = &w.fact;
        findings.push(LockFinding {
            file: b.file.clone(),
            line: b.line,
            message: format!(
                "blocking call `{}` while holding {}; a stalled {} serializes every \
                 contender — move the call outside the guard, or waive with \
                 `// LOCK-OK: <why>`",
                b.call.trim_end_matches('('),
                b.held
                    .iter()
                    .map(|s| format!("`{s}`"))
                    .collect::<Vec<_>>()
                    .join(", "),
                if b.call.contains("sync") { "device" } else { "callee" },
            ),
        });
    }

    findings
}

/// DFS cycle search over the declared edges; returns one cycle as a class
/// path if any exists.
fn find_cycle(order: &LockOrder) -> Option<Vec<String>> {
    let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
    for e in &order.edges {
        adj.entry(e.from.as_str()).or_default().push(e.to.as_str());
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: HashMap<&str, Color> = HashMap::new();
    for c in &order.classes {
        color.insert(c.name.as_str(), Color::White);
    }
    fn dfs<'a>(
        node: &'a str,
        adj: &HashMap<&'a str, Vec<&'a str>>,
        color: &mut HashMap<&'a str, Color>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        color.insert(node, Color::Gray);
        stack.push(node);
        for &next in adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
            match color.get(next).copied().unwrap_or(Color::White) {
                Color::Gray => {
                    let start = stack.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[start..].iter().map(|s| s.to_string()).collect();
                    cycle.push(next.to_string());
                    return Some(cycle);
                }
                Color::White => {
                    if let Some(c) = dfs(next, adj, color, stack) {
                        return Some(c);
                    }
                }
                Color::Black => {}
            }
        }
        stack.pop();
        color.insert(node, Color::Black);
        None
    }
    let names: Vec<&str> = order.classes.iter().map(|c| c.name.as_str()).collect();
    let mut stack = Vec::new();
    for name in names {
        if color.get(name) == Some(&Color::White) {
            if let Some(c) = dfs(name, &adj, &mut color, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

/// Re-export used by fixtures to name the primitive kinds in assertions.
pub use crate::locks::extract::LockKind as Kind;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks::extract::LockKind;
    use crate::locks::order::parse_lock_order;
    use std::path::Path;

    fn order_of(toml: &str) -> LockOrder {
        parse_lock_order(toml).unwrap()
    }

    fn decl(site: &str) -> Decl {
        let (_, field) = site.split_once('.').unwrap();
        Decl {
            site: site.to_string(),
            field: field.to_string(),
            kind: LockKind::Mutex,
            file: Path::new("src.rs").to_path_buf(),
            line: 1,
        }
    }

    fn runtime(order: &LockOrder) -> Vec<(String, u32, usize)> {
        order
            .classes
            .iter()
            .map(|c| (c.name.clone(), c.rank, c.line))
            .collect()
    }

    const BASE: &str = r#"
[[class]]
name = "a"
rank = 10
sites = ["A.a"]
[[class]]
name = "b"
rank = 20
sites = ["B.b"]
[[edge]]
from = "a"
to = "b"
why = "test"
"#;

    fn edge(held: &str, acquired: &str, waived: bool) -> Waivable<ObservedEdge> {
        Waivable {
            fact: ObservedEdge {
                held: held.to_string(),
                acquired: acquired.to_string(),
                file: Path::new("src.rs").to_path_buf(),
                line: 7,
            },
            waived,
        }
    }

    #[test]
    fn clean_graph_passes() {
        let order = order_of(BASE);
        let decls = vec![decl("A.a"), decl("B.b")];
        let f = check(
            &order,
            Path::new("LOCK_ORDER.toml"),
            &decls,
            &[edge("A.a", "B.b", false)],
            &[],
            &runtime(&order),
            Path::new("lock_order.rs"),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unranked_site_and_stale_site_are_errors() {
        let order = order_of(BASE);
        let decls = vec![decl("A.a"), decl("C.c")];
        let f = check(
            &order,
            Path::new("LOCK_ORDER.toml"),
            &decls,
            &[],
            &[],
            &runtime(&order),
            Path::new("lock_order.rs"),
        );
        assert!(f.iter().any(|x| x.message.contains("`C.c`") && x.message.contains("no ranked class")));
        assert!(f.iter().any(|x| x.message.contains("`B.b`") && x.message.contains("no longer exists")));
    }

    #[test]
    fn descending_and_undeclared_edges_are_errors_unless_waived() {
        let order = order_of(BASE);
        let decls = vec![decl("A.a"), decl("B.b")];
        let path = Path::new("LOCK_ORDER.toml");
        let rt = runtime(&order);
        let rtp = Path::new("lock_order.rs");

        let f = check(&order, path, &decls, &[edge("B.b", "A.a", false)], &[], &rt, rtp);
        assert!(f.iter().any(|x| x.message.contains("ranks must ascend")), "{f:?}");

        let f = check(&order, path, &decls, &[edge("B.b", "A.a", true)], &[], &rt, rtp);
        assert!(f.is_empty(), "{f:?}");

        // An ascending but undeclared pair still needs an [[edge]].
        let extra = format!(
            "{BASE}\n[[class]]\nname = \"c\"\nrank = 30\nsites = [\"C.c\"]\n"
        );
        let order = order_of(&extra);
        let decls = vec![decl("A.a"), decl("B.b"), decl("C.c")];
        let f = check(&order, path, &decls, &[edge("A.a", "C.c", false)], &[], &runtime(&order), rtp);
        assert!(f.iter().any(|x| x.message.contains("undeclared lock edge")), "{f:?}");
    }

    #[test]
    fn same_class_reacquisition_is_an_error() {
        let order = order_of(BASE);
        let decls = vec![decl("A.a"), decl("B.b")];
        let f = check(
            &order,
            Path::new("LOCK_ORDER.toml"),
            &decls,
            &[edge("A.a", "A.a", false)],
            &[],
            &runtime(&order),
            Path::new("lock_order.rs"),
        );
        assert!(f.iter().any(|x| x.message.contains("self-deadlocks")), "{f:?}");
    }

    #[test]
    fn cycle_in_declared_graph_is_reported() {
        let toml = r#"
[[class]]
name = "a"
rank = 10
sites = ["A.a"]
[[class]]
name = "b"
rank = 20
sites = ["B.b"]
[[edge]]
from = "a"
to = "b"
why = "x"
[[edge]]
from = "b"
to = "a"
why = "y"
"#;
        let order = order_of(toml);
        let decls = vec![decl("A.a"), decl("B.b")];
        let f = check(
            &order,
            Path::new("LOCK_ORDER.toml"),
            &decls,
            &[],
            &[],
            &runtime(&order),
            Path::new("lock_order.rs"),
        );
        assert!(f.iter().any(|x| x.message.contains("cycle")), "{f:?}");
        // The b -> a edge also fails the ascent check independently.
        assert!(f.iter().any(|x| x.message.contains("does not ascend")), "{f:?}");
    }

    #[test]
    fn runtime_rank_drift_is_an_error() {
        let order = order_of(BASE);
        let decls = vec![decl("A.a"), decl("B.b")];
        let mut rt = runtime(&order);
        rt[0].1 = 99;
        let f = check(
            &order,
            Path::new("LOCK_ORDER.toml"),
            &decls,
            &[],
            &[],
            &rt,
            Path::new("lock_order.rs"),
        );
        assert!(f.iter().any(|x| x.message.contains("disagrees")), "{f:?}");

        // A runtime constant missing from the TOML is also drift.
        let rt = vec![("a".to_string(), 10, 1), ("b".to_string(), 20, 2), ("ghost".to_string(), 5, 3)];
        let f = check(
            &order,
            Path::new("LOCK_ORDER.toml"),
            &decls,
            &[],
            &[],
            &rt,
            Path::new("lock_order.rs"),
        );
        assert!(f.iter().any(|x| x.message.contains("`ghost`")), "{f:?}");
    }

    #[test]
    fn blocking_hits_respect_waivers() {
        let order = order_of(BASE);
        let decls = vec![decl("A.a"), decl("B.b")];
        let hit = |waived| Waivable {
            fact: BlockingHit {
                call: ".sync()".to_string(),
                held: vec!["A.a".to_string()],
                file: Path::new("src.rs").to_path_buf(),
                line: 9,
            },
            waived,
        };
        let path = Path::new("LOCK_ORDER.toml");
        let rtp = Path::new("lock_order.rs");
        let f = check(&order, path, &decls, &[], &[hit(false)], &runtime(&order), rtp);
        assert!(f.iter().any(|x| x.message.contains("blocking call")), "{f:?}");
        let f = check(&order, path, &decls, &[], &[hit(true)], &runtime(&order), rtp);
        assert!(f.is_empty(), "{f:?}");
    }
}
