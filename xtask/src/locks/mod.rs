//! `cargo xtask locks` — whole-workspace lock-order analysis.
//!
//! The pass extracts every lock declaration and every lexically visible
//! acquisition in the modeled crates, then checks the result against the
//! hierarchy declared in `LOCK_ORDER.toml`:
//!
//! * every lock site must belong to a ranked class;
//! * sites listed in the TOML must still exist (no stale hierarchy);
//! * the runtime `LockClass` constants in `crates/sync/src/lock_order.rs`
//!   must mirror the TOML exactly (same classes, same ranks);
//! * declared edges must ascend in rank and the declared graph must be
//!   cycle-free;
//! * observed acquisitions under a live guard must ascend and be declared
//!   (`// LOCK-OK:` waivable per site);
//! * blocking calls (Env I/O, fsync, joins, parking, group-commit
//!   submission) under a live guard are errors (`// LOCK-OK:` waivable).
//!
//! The lexical pass sees only same-function nesting; the interprocedural
//! chains the TOML also declares are enforced at runtime by the
//! debug-assertion rank tracker in `flodb_sync::lock_order`. Together the
//! two halves cover what neither can alone.

pub mod extract;
pub mod graph;
pub mod lexer;
pub mod order;

use std::path::{Path, PathBuf};

use crate::common::{line_has_marker, rust_files};
use extract::{extract_decls, extract_facts, BlockingHit, Decl, ObservedEdge};
use graph::{LockFinding, Waivable};

/// The marker that waives a lock-order finding at its site, mirroring
/// `PANIC-OK:` for the panic rules.
pub const LOCK_OK: &str = "LOCK-OK:";

/// Crates whose lock discipline the pass models.
pub const MODELED_CRATES: &[&str] = &[
    "crates/sync/src",
    "crates/membuffer/src",
    "crates/memtable/src",
    "crates/storage/src",
    "crates/core/src",
];

/// Files that *implement* the lock infrastructure and are therefore not
/// subject to it: the shim's wrapper structs would otherwise register as
/// unrankable lock sites of their own.
const INFRA_FILES: &[&str] = &["shim.rs", "lock_order.rs"];

/// Runs the full pipeline over an explicit file set. `order_path` is the
/// hierarchy TOML, `runtime_path` the runtime-rank source (pass the real
/// `lock_order.rs` for the workspace, a fixture stand-in for tests).
pub fn run_locks_files(
    order_path: &Path,
    runtime_path: &Path,
    files: &[PathBuf],
) -> Result<Vec<LockFinding>, String> {
    let content_of = |p: &Path| -> Result<String, String> {
        std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))
    };

    let order_content = content_of(order_path)?;
    let order = order::parse_lock_order(&order_content)
        .map_err(|e| format!("{}:{}: {}", order_path.display(), e.line, e.message))?;
    let runtime_ranks = order::parse_runtime_ranks(&content_of(runtime_path)?);

    let mut sources: Vec<(PathBuf, String)> = Vec::new();
    for f in files {
        sources.push((f.clone(), content_of(f)?));
    }

    let mut decls: Vec<Decl> = Vec::new();
    for (path, content) in &sources {
        decls.extend(extract_decls(path, content));
    }

    let mut edges: Vec<Waivable<ObservedEdge>> = Vec::new();
    let mut blocking: Vec<Waivable<BlockingHit>> = Vec::new();
    for (path, content) in &sources {
        let lines: Vec<&str> = content.lines().collect();
        let waived_at =
            |line: usize| line >= 1 && line_has_marker(&lines, line - 1, LOCK_OK);
        let facts = extract_facts(path, content, &decls);
        for e in facts.edges {
            let waived = waived_at(e.line);
            edges.push(Waivable { fact: e, waived });
        }
        for b in facts.blocking {
            let waived = waived_at(b.line);
            blocking.push(Waivable { fact: b, waived });
        }
    }

    Ok(graph::check(
        &order,
        order_path,
        &decls,
        &edges,
        &blocking,
        &runtime_ranks,
        runtime_path,
    ))
}

/// Runs the pass over the workspace rooted at `root`.
pub fn run_locks(root: &Path) -> Result<Vec<LockFinding>, String> {
    let order_path = root.join("LOCK_ORDER.toml");
    let runtime_path = root.join("crates/sync/src/lock_order.rs");
    let mut files = Vec::new();
    for dir in MODELED_CRATES {
        rust_files(&root.join(dir), &mut files);
    }
    files.retain(|f| {
        let name = f.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let is_sync_crate = f
            .parent()
            .map(|p| p.ends_with("crates/sync/src"))
            .unwrap_or(false);
        !(is_sync_crate && INFRA_FILES.contains(&name))
    });
    files.sort();
    run_locks_files(&order_path, &runtime_path, &files)
}
