//! Lock-site extraction: declarations, guard scopes, acquisition edges
//! and blocking calls, from the lexed token stream.
//!
//! Two passes per workspace:
//!
//! 1. **Declarations** — every struct field whose type mentions `Mutex`,
//!    `RwLock` or `Condvar` is a lock site, named `Type.field`. This is
//!    the robust half: a lock cannot exist without a declaration, so
//!    "every site must resolve to a ranked class" is enforceable exactly.
//! 2. **Acquisitions** — `.lock()` / `.read()` / `.write()` calls whose
//!    receiver resolves to a declared site (via the enclosing `impl`
//!    block for `self.field`, or a workspace-unique field name
//!    otherwise). Guard live scopes follow the binding form: `let g = ...`
//!    lives to the end of its block (or `drop(g)`); an acquisition in a
//!    `for`/`if`/`while`/`match` header lives for the following block; a
//!    bare expression statement's guard is a temporary that dies at the
//!    statement's semicolon. While any guard is live, further resolved
//!    acquisitions produce *edges* and blocking-call patterns produce
//!    *blocking hits*. Receivers that are plain locals are deliberately
//!    unresolved (best-effort): the runtime rank tracker covers what the
//!    lexical pass cannot see.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::locks::lexer::{is_ident, lex, Tok, Token};

/// What kind of primitive a declaration is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// A mutual-exclusion lock.
    Mutex,
    /// A reader-writer lock.
    RwLock,
    /// A condition variable (a ranked *site*, but never a graph node —
    /// waiting is checked against the guards held at the wait).
    Condvar,
}

/// One lock declaration: a struct field of lock type.
#[derive(Debug, Clone)]
pub struct Decl {
    /// `Type.field`.
    pub site: String,
    /// Field name alone (for receiver resolution).
    pub field: String,
    /// The primitive kind.
    pub kind: LockKind,
    /// Declaring file.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
}

/// One acquired-while-holding observation.
#[derive(Debug, Clone)]
pub struct ObservedEdge {
    /// Site held (`Type.field`).
    pub held: String,
    /// Site acquired under it.
    pub acquired: String,
    /// File of the inner acquisition.
    pub file: PathBuf,
    /// 1-based line of the inner acquisition.
    pub line: usize,
}

/// A blocking call made while holding at least one resolved guard.
#[derive(Debug, Clone)]
pub struct BlockingHit {
    /// The pattern that matched (e.g. `.sync()`).
    pub call: String,
    /// Sites held at the call.
    pub held: Vec<String>,
    /// File of the call.
    pub file: PathBuf,
    /// 1-based line of the call.
    pub line: usize,
}

/// Everything the extraction pass found in one file.
#[derive(Debug, Default)]
pub struct FileFacts {
    /// Acquisition edges.
    pub edges: Vec<ObservedEdge>,
    /// Blocking calls under guards.
    pub blocking: Vec<BlockingHit>,
}

/// Calls that block the calling thread: `Env` I/O (every one is a
/// fault-injection point and can hit a real device), fsync, condvar
/// waits, thread sleeps/joins/parking, group-commit submission, and the
/// backoff helpers' bounded spinning. A guard held across any of these
/// serializes every contender behind a stall — a hard error unless the
/// site carries a `// LOCK-OK:` waiver arguing the blocking is the
/// design (e.g. the WAL leader's append+fsync under the log lock).
pub const BLOCKING_CALLS: &[&str] = &[
    ".sync()",
    ".sync_dir(",
    ".new_writable(",
    ".open_random(",
    ".read_at(",
    ".delete(",
    ".list(",
    ".append(",
    ".join(",
    ".submit(",
    "sleep(",
    "park(",
    "park_timeout(",
    "read_exact(",
    ".snooze(",
    "spin_loop(",
    "yield_now(",
];

/// Condvar wait spellings, checked separately: waiting on the guard's
/// *own* mutex is the primitive working as intended; holding any *other*
/// guard across the wait is the violation.
pub const WAIT_CALLS: &[&str] = &[".wait(", ".wait_for(", ".wait_until(", ".wait_while("];

fn kind_of(ident: &str) -> Option<LockKind> {
    match ident {
        "Mutex" => Some(LockKind::Mutex),
        "RwLock" => Some(LockKind::RwLock),
        "Condvar" => Some(LockKind::Condvar),
        _ => None,
    }
}

/// Pass 1: extract lock-typed struct fields from one file.
pub fn extract_decls(file: &Path, content: &str) -> Vec<Decl> {
    let toks = lex(content);
    let mut decls = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !is_ident(&toks[i].tok, "struct") {
            i += 1;
            continue;
        }
        let Some(Token { tok: Tok::Ident(struct_name), .. }) = toks.get(i + 1) else {
            i += 1;
            continue;
        };
        let struct_name = struct_name.clone();
        // Find the body `{` (skipping generics / where clauses). A `;`
        // first means a unit/tuple struct — no named fields to scan.
        let mut j = i + 2;
        let mut body_start = None;
        while let Some(t) = toks.get(j) {
            match t.tok {
                Tok::LBrace => {
                    body_start = Some(j);
                    break;
                }
                Tok::Semi => break,
                _ => j += 1,
            }
        }
        let Some(body_start) = body_start else {
            i += 1;
            continue;
        };
        // Walk fields at depth 1: `name :` then type tokens to the
        // field-separating comma (nesting-aware) or the closing brace.
        let mut depth = 1usize;
        let mut k = body_start + 1;
        while k < toks.len() && depth > 0 {
            match &toks[k].tok {
                Tok::LBrace => depth += 1,
                Tok::RBrace => depth -= 1,
                Tok::Ident(field)
                    if depth == 1
                        && matches!(toks.get(k + 1).map(|t| &t.tok), Some(Tok::Colon))
                        && !matches!(toks.get(k + 2).map(|t| &t.tok), Some(Tok::Colon)) =>
                {
                    let field = field.clone();
                    let line = toks[k].line;
                    // Scan the type expression for lock idents.
                    let mut nest = 0i32;
                    let mut m = k + 2;
                    let mut found: Option<LockKind> = None;
                    while m < toks.len() {
                        match &toks[m].tok {
                            Tok::Lt | Tok::LParen | Tok::LBracket => nest += 1,
                            Tok::Gt | Tok::RParen | Tok::RBracket => {
                                // A closing `>`/`)`/`]` below the
                                // field's own nesting ends the type
                                // (e.g. the struct's closing brace
                                // comes next).
                                nest -= 1;
                            }
                            Tok::Comma if nest <= 0 => break,
                            Tok::RBrace => break,
                            Tok::Ident(ty) if found.is_none() => found = kind_of(ty),
                            _ => {}
                        }
                        m += 1;
                    }
                    if let Some(kind) = found {
                        decls.push(Decl {
                            site: format!("{struct_name}.{field}"),
                            field,
                            kind,
                            file: file.to_path_buf(),
                            line,
                        });
                    }
                    k = m;
                    continue;
                }
                _ => {}
            }
            k += 1;
        }
        i = k;
    }
    decls
}

/// How a live guard came to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GuardScope {
    /// `let g = ...` — lives until its block closes (or `drop(g)`).
    Block(usize),
    /// Acquired in a `for`/`if`/`while`/`match` header — attaches to the
    /// next block that opens, then behaves like `Block`.
    PendingBlock,
    /// A statement temporary — dies at the statement's end.
    Statement,
}

#[derive(Debug, Clone)]
struct LiveGuard {
    site: String,
    binder: Option<String>,
    scope: GuardScope,
    /// 1-based line the guard went live.
    start_line: usize,
}

/// Resolves a receiver chain (identifiers left of `.lock()` etc., in
/// source order, `[...]` index expressions already skipped) to a declared
/// site.
fn resolve(
    chain: &[String],
    impl_ctx: Option<&str>,
    by_site: &HashMap<String, LockKind>,
    by_field: &HashMap<String, Vec<String>>,
) -> Option<String> {
    if chain.is_empty() {
        return None;
    }
    let field = chain.last()?;
    if chain.len() == 2 && chain[0] == "self" {
        if let Some(ty) = impl_ctx {
            let site = format!("{ty}.{field}");
            if by_site.contains_key(&site) {
                return Some(site);
            }
        }
    }
    match by_field.get(field.as_str()) {
        Some(sites) if sites.len() == 1 => Some(sites[0].clone()),
        _ => None,
    }
}

/// Parses an `impl` header starting at `toks[i]` (which is `impl`),
/// returning the implemented type name and the index of the body `{`.
fn parse_impl_header(toks: &[Token], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    // Skip the generic parameter list directly after `impl`.
    if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Lt)) {
        let mut depth = 0i32;
        while let Some(t) = toks.get(j) {
            match t.tok {
                Tok::Lt => depth += 1,
                Tok::Gt => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Collect idents up to `{`; `for` resets the candidate (trait impl).
    let mut ty: Option<String> = None;
    let mut after_for = false;
    let mut depth = 0i32;
    while let Some(t) = toks.get(j) {
        match &t.tok {
            Tok::LBrace if depth == 0 => return ty.map(|ty| (ty, j)),
            Tok::Lt => depth += 1,
            Tok::Gt => depth -= 1,
            Tok::Ident(w) if w == "for" => {
                after_for = true;
                ty = None;
            }
            Tok::Ident(w) if w == "where" => {
                // Type position is over; keep scanning for the `{`.
            }
            Tok::Ident(w) if depth == 0 => {
                if ty.is_none() || after_for {
                    // First path segment of the (self-)type; later
                    // segments of a path (`a::B`) overwrite via Colon
                    // handling below, which is fine — the final segment
                    // is the type name.
                    ty = Some(w.clone());
                    after_for = false;
                } else if matches!(toks.get(j - 1).map(|t| &t.tok), Some(Tok::Colon)) {
                    ty = Some(w.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Pass 2: extract edges and blocking hits from one file, given the
/// workspace-wide declarations.
pub fn extract_facts(file: &Path, content: &str, decls: &[Decl]) -> FileFacts {
    let by_site: HashMap<String, LockKind> =
        decls.iter().map(|d| (d.site.clone(), d.kind)).collect();
    let mut by_field: HashMap<String, Vec<String>> = HashMap::new();
    for d in decls {
        let sites = by_field.entry(d.field.clone()).or_default();
        if !sites.contains(&d.site) {
            sites.push(d.site.clone());
        }
    }

    let toks = lex(content);
    let mut facts = FileFacts::default();
    let mut guards: Vec<LiveGuard> = Vec::new();
    // (type name, brace depth of its body) of enclosing impl blocks.
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;

    // Statement accumulator.
    let mut stmt: Vec<usize> = Vec::new(); // indices into toks

    let mut i = 0;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Ident(w) if w == "impl" => {
                if let Some((ty, body)) = parse_impl_header(&toks, i) {
                    impl_stack.push((ty, depth + 1));
                    depth += 1;
                    stmt.clear();
                    i = body + 1;
                    continue;
                }
            }
            Tok::LBrace => {
                depth += 1;
                // A block header statement (for/if/while/match/loop or a
                // plain block) ends here; process it, attaching any
                // pending guards to the block that just opened.
                process_statement(
                    &toks, &stmt, file, &by_site, &by_field, &impl_stack, &mut guards,
                    &mut facts, depth,
                );
                for g in &mut guards {
                    if g.scope == GuardScope::PendingBlock {
                        g.scope = GuardScope::Block(depth);
                    }
                }
                // Temporaries from the header die once the block opens.
                guards.retain(|g| g.scope != GuardScope::Statement);
                stmt.clear();
            }
            Tok::RBrace => {
                // An unterminated trailing expression still counts.
                process_statement(
                    &toks, &stmt, file, &by_site, &by_field, &impl_stack, &mut guards,
                    &mut facts, depth,
                );
                stmt.clear();
                guards.retain(|g| match g.scope {
                    GuardScope::Block(d) => d < depth,
                    GuardScope::PendingBlock => false,
                    GuardScope::Statement => false,
                });
                impl_stack.retain(|(_, d)| *d < depth);
                depth = depth.saturating_sub(1);
            }
            Tok::Semi => {
                process_statement(
                    &toks, &stmt, file, &by_site, &by_field, &impl_stack, &mut guards,
                    &mut facts, depth,
                );
                guards.retain(|g| g.scope != GuardScope::Statement);
                stmt.clear();
            }
            _ => stmt.push(i),
        }
        i += 1;
    }
    facts
}

/// Handles one accumulated statement: guard kills (`drop(g)`), new
/// acquisitions (with edge emission), and blocking/wait hits.
#[allow(clippy::too_many_arguments)]
fn process_statement(
    toks: &[Token],
    stmt: &[usize],
    file: &Path,
    by_site: &HashMap<String, LockKind>,
    by_field: &HashMap<String, Vec<String>>,
    impl_stack: &[(String, usize)],
    guards: &mut Vec<LiveGuard>,
    facts: &mut FileFacts,
    depth: usize,
) {
    if stmt.is_empty() {
        return;
    }
    let impl_ctx = impl_stack.last().map(|(t, _)| t.as_str());
    let first = &toks[stmt[0]].tok;
    let is_header = matches!(first, Tok::Ident(w) if matches!(w.as_str(), "for" | "if" | "while" | "match"));
    let binder = if is_ident(first, "let") {
        // `let [mut] name = ...`; `let _ = ...` drops immediately.
        let mut j = 1;
        if stmt.len() > j && is_ident(&toks[stmt[j]].tok, "mut") {
            j += 1;
        }
        match stmt.get(j).map(|&k| &toks[k].tok) {
            Some(Tok::Ident(name)) if name != "_" => Some(name.clone()),
            _ => None,
        }
    } else {
        None
    };

    // `drop(g)` kills the named guard.
    for w in stmt.windows(3) {
        if is_ident(&toks[w[0]].tok, "drop")
            && toks[w[1]].tok == Tok::LParen
        {
            if let Tok::Ident(name) = &toks[w[2]].tok {
                guards.retain(|g| g.binder.as_deref() != Some(name.as_str()));
            }
        }
    }

    // Wait-call and blocking detection work on the raw statement text per
    // line; gather the lines this statement spans.
    let stmt_lines: Vec<usize> = {
        let mut v: Vec<usize> = stmt.iter().map(|&k| toks[k].line).collect();
        v.dedup();
        v
    };

    // Acquisitions: `<chain> . {lock,try_lock,read,try_read,write,try_write} (`.
    let mut s = 0;
    while s + 2 < stmt.len() {
        let (a, b, c) = (stmt[s], stmt[s + 1], stmt[s + 2]);
        let is_acq = toks[a].tok == Tok::Dot
            && matches!(&toks[b].tok, Tok::Ident(m)
                if matches!(m.as_str(), "lock" | "try_lock" | "read" | "try_read" | "write" | "try_write"))
            && toks[c].tok == Tok::LParen
            && matches!(stmt.get(s + 3).map(|&k| &toks[k].tok), Some(Tok::RParen) | None);
        if !is_acq {
            s += 1;
            continue;
        }
        let method = match &toks[b].tok {
            Tok::Ident(m) => m.clone(),
            _ => unreachable!("matched an ident above"),
        };
        // Walk backward over the receiver: `[...]` index groups and
        // `ident .` segments.
        let mut chain_rev: Vec<String> = Vec::new();
        let mut p = s; // index into stmt, pointing at the Dot
        loop {
            // Skip a `[ ... ]` group directly before the dot.
            let mut q = p;
            if q > 0 && toks[stmt[q - 1]].tok == Tok::RBracket {
                let mut nest = 0i32;
                while q > 0 {
                    q -= 1;
                    match toks[stmt[q]].tok {
                        Tok::RBracket => nest += 1,
                        Tok::LBracket => {
                            nest -= 1;
                            if nest == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
            }
            if q == 0 {
                break;
            }
            if let Tok::Ident(seg) = &toks[stmt[q - 1]].tok {
                chain_rev.push(seg.clone());
                // Continue if the segment is itself preceded by a dot.
                if q >= 2 && toks[stmt[q - 2]].tok == Tok::Dot {
                    p = q - 2;
                    continue;
                }
            }
            break;
        }
        let chain: Vec<String> = chain_rev.into_iter().rev().collect();
        let resolved = resolve(&chain, impl_ctx, by_site, by_field);
        if let Some(site) = resolved {
            let kind = by_site[&site];
            let method_matches = match kind {
                LockKind::Mutex => matches!(method.as_str(), "lock" | "try_lock"),
                LockKind::RwLock => {
                    matches!(method.as_str(), "read" | "try_read" | "write" | "try_write")
                }
                LockKind::Condvar => false,
            };
            if method_matches {
                let line = toks[b].line;
                for g in guards.iter() {
                    facts.edges.push(ObservedEdge {
                        held: g.site.clone(),
                        acquired: site.clone(),
                        file: file.to_path_buf(),
                        line,
                    });
                }
                // `let v = m.lock().get(..)` binds the *chained result*,
                // not the guard — the guard is a temporary dropped at
                // statement end. Only an acquisition that terminates the
                // expression (next token is not `.`) lives in the binder.
                let chained_further =
                    matches!(stmt.get(s + 4).map(|&k| &toks[k].tok), Some(Tok::Dot));
                let scope = if binder.is_some() && !chained_further {
                    GuardScope::Block(depth)
                } else if is_header {
                    GuardScope::PendingBlock
                } else {
                    GuardScope::Statement
                };
                guards.push(LiveGuard {
                    site,
                    binder: binder.clone(),
                    scope,
                    start_line: line,
                });
            }
        }
        s += 1;
    }

    // Blocking calls and condvar waits while guards are live. Guards
    // acquired by this very statement are included: a temporary like
    // `self.threads.lock().join()` holds across the call.
    if guards.is_empty() {
        return;
    }
    let _ = stmt_lines;
    let text: String = {
        // Reconstruct enough of the statement to pattern-match calls.
        let mut t = String::new();
        for &k in stmt {
            match &toks[k].tok {
                Tok::Ident(w) => {
                    t.push_str(w);
                }
                Tok::Dot => t.push('.'),
                Tok::LParen => t.push('('),
                Tok::RParen => t.push(')'),
                Tok::Amp => t.push('&'),
                Tok::Comma => t.push(','),
                Tok::Colon => t.push(':'),
                _ => t.push(' '),
            }
        }
        t
    };
    let line = toks[stmt[0]].line;
    for pat in WAIT_CALLS {
        if let Some(pos) = text.find(pat) {
            // The waited guard: first ident after `(&mut `.
            let after = &text[pos + pat.len()..];
            let waited = after
                .trim_start_matches('&')
                .trim_start()
                .trim_start_matches("mut")
                .trim_start();
            let waited: String = waited
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            let others: Vec<String> = guards
                .iter()
                .filter(|g| g.binder.as_deref() != Some(waited.as_str()))
                .map(|g| g.site.clone())
                .collect();
            if !others.is_empty() {
                facts.blocking.push(BlockingHit {
                    call: (*pat).to_string(),
                    held: others,
                    file: file.to_path_buf(),
                    line,
                });
            }
        }
    }
    for pat in BLOCKING_CALLS {
        if text.contains(pat) {
            facts.blocking.push(BlockingHit {
                call: (*pat).to_string(),
                held: guards.iter().map(|g| g.site.clone()).collect(),
                file: file.to_path_buf(),
                line,
            });
        }
    }
    // Silence the unused-field warning until diagnostics grow richer.
    let _ = guards.first().map(|g| g.start_line);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decls_of(src: &str) -> Vec<Decl> {
        extract_decls(Path::new("x.rs"), src)
    }

    #[test]
    fn finds_lock_fields() {
        let src = "pub struct A { state: Mutex<u8>, cv: Condvar, data: Arc<RwLock<Vec<u8>>>, n: usize }\n";
        let d = decls_of(src);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].site, "A.state");
        assert_eq!(d[0].kind, LockKind::Mutex);
        assert_eq!(d[1].site, "A.cv");
        assert_eq!(d[1].kind, LockKind::Condvar);
        assert_eq!(d[2].site, "A.data");
        assert_eq!(d[2].kind, LockKind::RwLock);
    }

    #[test]
    fn nested_generics_do_not_split_fields() {
        let src = "struct B { map: HashMap<String, Arc<RwLock<Vec<u8>>>>, m: Mutex<()> }\n";
        let d = decls_of(src);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].site, "B.map");
        assert_eq!(d[1].site, "B.m");
    }

    #[test]
    fn self_receiver_resolves_via_impl_context() {
        let src = "struct A { inner: Mutex<u8> }\nstruct B { inner: Mutex<u8> }\n\
                   impl A { fn f(&self) { let g = self.inner.lock(); let h = self.inner.lock(); } }\n";
        let decls = decls_of(src);
        let facts = extract_facts(Path::new("x.rs"), src, &decls);
        assert_eq!(facts.edges.len(), 1);
        assert_eq!(facts.edges[0].held, "A.inner");
        assert_eq!(facts.edges[0].acquired, "A.inner");
    }

    #[test]
    fn unique_field_resolves_without_impl_context() {
        let src = "struct W { log: Mutex<u8> }\nstruct P { poison: Mutex<u8> }\n\
                   impl W { fn f(&self, p: &P) { let g = self.log.lock(); let s = p.poison.lock(); } }\n";
        let decls = decls_of(src);
        let facts = extract_facts(Path::new("x.rs"), src, &decls);
        assert_eq!(facts.edges.len(), 1);
        assert_eq!(facts.edges[0].held, "W.log");
        assert_eq!(facts.edges[0].acquired, "P.poison");
    }

    #[test]
    fn drop_ends_a_guard_scope() {
        let src = "struct A { a: Mutex<u8> }\nstruct B { b: Mutex<u8> }\n\
                   impl A { fn f(&self, x: &B) { let g = self.a.lock(); drop(g); let h = x.b.lock(); } }\n";
        let decls = decls_of(src);
        let facts = extract_facts(Path::new("x.rs"), src, &decls);
        assert!(facts.edges.is_empty(), "{:?}", facts.edges);
    }

    #[test]
    fn statement_temporaries_do_not_outlive_their_statement() {
        let src = "struct A { a: Mutex<u8> }\nstruct B { b: Mutex<u8> }\n\
                   impl A { fn f(&self, x: &B) { self.a.lock().touch(); let h = x.b.lock(); } }\n";
        let decls = decls_of(src);
        let facts = extract_facts(Path::new("x.rs"), src, &decls);
        assert!(facts.edges.is_empty(), "{:?}", facts.edges);
    }

    #[test]
    fn blocking_call_under_guard_is_reported() {
        let src = "struct A { a: Mutex<u8> }\n\
                   impl A { fn f(&self, w: &mut F) { let g = self.a.lock(); w.sync(); } }\n";
        let decls = decls_of(src);
        let facts = extract_facts(Path::new("x.rs"), src, &decls);
        assert_eq!(facts.blocking.len(), 1);
        assert_eq!(facts.blocking[0].call, ".sync()");
        assert_eq!(facts.blocking[0].held, vec!["A.a".to_string()]);
    }

    #[test]
    fn waiting_on_own_mutex_is_fine_but_foreign_guards_are_not() {
        let ok = "struct A { a: Mutex<u8>, cv: Condvar }\n\
                  impl A { fn f(&self) { let mut g = self.a.lock(); self.cv.wait(&mut g); } }\n";
        let decls = decls_of(ok);
        let facts = extract_facts(Path::new("x.rs"), ok, &decls);
        assert!(facts.blocking.is_empty(), "{:?}", facts.blocking);

        let bad = "struct A { a: Mutex<u8>, cv: Condvar }\nstruct B { b: Mutex<u8> }\n\
                   impl A { fn f(&self, x: &B) { let o = x.b.lock(); let mut g = self.a.lock(); self.cv.wait(&mut g); } }\n";
        let decls = decls_of(bad);
        let facts = extract_facts(Path::new("x.rs"), bad, &decls);
        assert!(
            facts.blocking.iter().any(|b| b.call == ".wait(" && b.held == vec!["B.b".to_string()]),
            "{:?}",
            facts.blocking
        );
    }

    #[test]
    fn for_header_guard_lives_for_the_loop() {
        let src = "struct A { threads: Mutex<Vec<u8>> }\n\
                   impl A { fn f(&self) { for h in self.threads.lock().drain() { h.join(); } } }\n";
        let decls = decls_of(src);
        let facts = extract_facts(Path::new("x.rs"), src, &decls);
        assert!(
            facts.blocking.iter().any(|b| b.call == ".join("),
            "{:?}",
            facts.blocking
        );
    }

    #[test]
    fn indexed_receivers_resolve() {
        let src = "struct C { shards: Vec<Mutex<u8>> }\nstruct D { d: Mutex<u8> }\n\
                   impl C { fn f(&self, x: &D) { let g = x.d.lock(); self.shards[i % self.shards.len()].lock().touch(); } }\n";
        let decls = decls_of(src);
        let facts = extract_facts(Path::new("x.rs"), src, &decls);
        assert!(
            facts.edges.iter().any(|e| e.held == "D.d" && e.acquired == "C.shards"),
            "{:?}",
            facts.edges
        );
    }
}
