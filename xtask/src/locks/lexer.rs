//! A lightweight Rust lexer for the locks pass.
//!
//! Like PR 6's model checker, this is built from scratch — no syn, no
//! proc-macro2. The pass only needs token *shape* (identifiers, dots,
//! parens, brace nesting) with line numbers, so the lexer tokenizes the
//! comment- and string-stripped code portion of each line (reusing the
//! lint scanner's state machine) and never has to understand expressions
//! it does not care about. Test code — everything from the first
//! `#[cfg(test)]` line onward, per the repo convention — is not lexed:
//! lock discipline in tests is exercised by the runtime rank tracker, not
//! the static graph.

use crate::common::code_portion;

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`self`, `let`, `lock`, ...).
    Ident(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `&`
    Amp,
    /// `=`
    Eq,
    /// `#`
    Pound,
    /// Any other punctuation the pass treats as inert.
    Other(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: usize,
}

/// Lexes `content` into tokens, stopping at the first `#[cfg(test)]`
/// line (test code is out of scope for the static pass).
pub fn lex(content: &str) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, raw) in content.lines().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let code = code_portion(raw);
        let line = idx + 1;
        let mut chars = code.chars().peekable();
        while let Some(c) = chars.next() {
            let tok = match c {
                c if c.is_whitespace() => continue,
                c if c.is_alphanumeric() || c == '_' => {
                    let mut ident = String::new();
                    ident.push(c);
                    while let Some(&n) = chars.peek() {
                        if n.is_alphanumeric() || n == '_' {
                            ident.push(n);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    Tok::Ident(ident)
                }
                '{' => Tok::LBrace,
                '}' => Tok::RBrace,
                '(' => Tok::LParen,
                ')' => Tok::RParen,
                '[' => Tok::LBracket,
                ']' => Tok::RBracket,
                ';' => Tok::Semi,
                ',' => Tok::Comma,
                '.' => Tok::Dot,
                ':' => Tok::Colon,
                '<' => Tok::Lt,
                '>' => Tok::Gt,
                '&' => Tok::Amp,
                '=' => Tok::Eq,
                '#' => Tok::Pound,
                other => Tok::Other(other),
            };
            out.push(Token { tok, line });
        }
    }
    out
}

/// Convenience: is this token the identifier `s`?
pub fn is_ident(t: &Tok, s: &str) -> bool {
    matches!(t, Tok::Ident(i) if i == s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_shapes_with_lines() {
        let toks = lex("let g = self.log.lock();\nx();\n");
        assert!(matches!(&toks[0].tok, Tok::Ident(i) if i == "let"));
        assert_eq!(toks[0].line, 1);
        let last = toks.last().unwrap();
        assert_eq!(last.tok, Tok::Semi);
        assert_eq!(last.line, 2);
    }

    #[test]
    fn strips_strings_comments_and_test_code() {
        let toks = lex("let s = \"a.lock()\"; // b.lock()\n#[cfg(test)]\nmod tests { c.lock(); }\n");
        assert!(!toks.iter().any(|t| is_ident(&t.tok, "lock")));
    }
}
