//! The declared lock hierarchy: `LOCK_ORDER.toml` parsing and the
//! cross-check against `crates/sync/src/lock_order.rs`.
//!
//! The TOML dialect is the small subset the file actually uses (parsed
//! here without crates.io dependencies, like everything else in xtask):
//! `[[class]]` / `[[edge]]` tables, single-line `key = "string"`,
//! `key = integer`, and single-line `key = ["a", "b"]` string arrays.
//! Comments start with `#`.

use std::collections::HashMap;
use std::path::Path;

/// One ranked lock class.
#[derive(Debug, Clone)]
pub struct LockClassDecl {
    /// Class name, e.g. `core.freeze`.
    pub name: String,
    /// Rank; outer locks are low, inner locks are high. Every acquisition
    /// edge must go from a strictly lower to a strictly higher rank.
    pub rank: u32,
    /// The source sites (`Type.field`) this class covers.
    pub sites: Vec<String>,
    /// 1-based line of the `[[class]]` header (diagnostics).
    pub line: usize,
}

/// One declared acquired-while-holding edge with its justification.
#[derive(Debug, Clone)]
pub struct EdgeDecl {
    /// Class held.
    pub from: String,
    /// Class acquired under it.
    pub to: String,
    /// Why this nesting is legal and intended.
    pub why: String,
    /// 1-based line of the `[[edge]]` header (diagnostics).
    pub line: usize,
}

/// The parsed hierarchy.
#[derive(Debug, Default)]
pub struct LockOrder {
    /// Ranked classes, in file order.
    pub classes: Vec<LockClassDecl>,
    /// Declared edges, in file order.
    pub edges: Vec<EdgeDecl>,
}

impl LockOrder {
    /// Class lookup by name.
    pub fn class(&self, name: &str) -> Option<&LockClassDecl> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Maps every declared site to its class name.
    pub fn site_to_class(&self) -> HashMap<&str, &str> {
        let mut map = HashMap::new();
        for c in &self.classes {
            for s in &c.sites {
                map.insert(s.as_str(), c.name.as_str());
            }
        }
        map
    }
}

/// A parse failure: line and message.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

fn unquote(v: &str, line: usize) -> Result<String, ParseError> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(ParseError {
            line,
            message: format!("expected a double-quoted string, got `{v}`"),
        })
    }
}

fn parse_array(v: &str, line: usize) -> Result<Vec<String>, ParseError> {
    let v = v.trim();
    let Some(body) = v.strip_prefix('[').and_then(|s| s.strip_suffix(']')) else {
        return Err(ParseError {
            line,
            message: format!("expected a single-line [\"...\"] array, got `{v}`"),
        });
    };
    let mut out = Vec::new();
    for item in body.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(unquote(item, line)?);
    }
    Ok(out)
}

/// Parses the `LOCK_ORDER.toml` dialect.
pub fn parse_lock_order(content: &str) -> Result<LockOrder, ParseError> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Class,
        Edge,
    }
    let mut order = LockOrder::default();
    let mut section = Section::None;
    for (idx, raw) in content.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match trimmed {
            "[[class]]" => {
                section = Section::Class;
                order.classes.push(LockClassDecl {
                    name: String::new(),
                    rank: 0,
                    sites: Vec::new(),
                    line,
                });
                continue;
            }
            "[[edge]]" => {
                section = Section::Edge;
                order.edges.push(EdgeDecl {
                    from: String::new(),
                    to: String::new(),
                    why: String::new(),
                    line,
                });
                continue;
            }
            _ => {}
        }
        let Some((key, value)) = trimmed.split_once('=') else {
            return Err(ParseError {
                line,
                message: format!("expected `key = value` or a [[class]]/[[edge]] header, got `{trimmed}`"),
            });
        };
        let key = key.trim();
        match section {
            Section::None => {
                return Err(ParseError {
                    line,
                    message: "key outside any [[class]]/[[edge]] table".to_string(),
                })
            }
            Section::Class => {
                // PANIC-OK is not needed: a [[class]] header always pushes
                // before its keys are seen, so last_mut cannot fail — but
                // stay defensive anyway.
                let Some(class) = order.classes.last_mut() else {
                    return Err(ParseError {
                        line,
                        message: "class key before any [[class]] header".to_string(),
                    });
                };
                match key {
                    "name" => class.name = unquote(value, line)?,
                    "rank" => {
                        class.rank = value.trim().parse().map_err(|_| ParseError {
                            line,
                            message: format!("rank must be an unsigned integer, got `{}`", value.trim()),
                        })?;
                    }
                    "sites" => class.sites = parse_array(value, line)?,
                    "about" => {
                        unquote(value, line)?;
                    }
                    other => {
                        return Err(ParseError {
                            line,
                            message: format!("unknown class key `{other}`"),
                        })
                    }
                }
            }
            Section::Edge => {
                let Some(edge) = order.edges.last_mut() else {
                    return Err(ParseError {
                        line,
                        message: "edge key before any [[edge]] header".to_string(),
                    });
                };
                match key {
                    "from" => edge.from = unquote(value, line)?,
                    "to" => edge.to = unquote(value, line)?,
                    "why" => edge.why = unquote(value, line)?,
                    other => {
                        return Err(ParseError {
                            line,
                            message: format!("unknown edge key `{other}`"),
                        })
                    }
                }
            }
        }
    }
    for c in &order.classes {
        if c.name.is_empty() {
            return Err(ParseError {
                line: c.line,
                message: "[[class]] missing `name`".to_string(),
            });
        }
    }
    for e in &order.edges {
        if e.from.is_empty() || e.to.is_empty() || e.why.is_empty() {
            return Err(ParseError {
                line: e.line,
                message: "[[edge]] needs `from`, `to` and a non-empty `why` justification"
                    .to_string(),
            });
        }
    }
    Ok(order)
}

/// Extracts the `LockClass { name: "...", rank: N }` constants from
/// `crates/sync/src/lock_order.rs` so the static hierarchy and the
/// runtime ranks cannot drift apart. Returns `(name, rank, line)` per
/// constant; constants are written one per line by convention.
pub fn parse_runtime_ranks(content: &str) -> Vec<(String, u32, usize)> {
    let mut out = Vec::new();
    for (idx, raw) in content.lines().enumerate() {
        let code = crate::common::code_portion(raw);
        let Some(pos) = code.find("LockClass {") else {
            continue;
        };
        let rest = &code[pos..];
        // The stripped code portion blanks string literals, so read the
        // name from the raw line instead.
        let Some(name) = raw
            .split_once("name:")
            .and_then(|(_, r)| r.split('"').nth(1))
        else {
            continue;
        };
        let Some(rank) = rest
            .split_once("rank:")
            .and_then(|(_, r)| {
                r.trim_start()
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse::<u32>()
                    .ok()
            })
        else {
            continue;
        };
        out.push((name.to_string(), rank, idx + 1));
    }
    out
}

/// Loads and parses `LOCK_ORDER.toml` from the workspace root.
pub fn load(root: &Path) -> Result<LockOrder, String> {
    let path = root.join("LOCK_ORDER.toml");
    let content = std::fs::read_to_string(&path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    parse_lock_order(&content).map_err(|e| format!("{}:{}: {}", path.display(), e.line, e.message))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_classes_and_edges() {
        let toml = r#"
# comment
[[class]]
name = "a.outer"
rank = 10
sites = ["Foo.lock", "Foo.cv"]
about = "the outer lock"

[[class]]
name = "b.inner"
rank = 20
sites = ["Bar.lock"]

[[edge]]
from = "a.outer"
to = "b.inner"
why = "Foo::step acquires Bar under its own lock"
"#;
        let order = parse_lock_order(toml).unwrap();
        assert_eq!(order.classes.len(), 2);
        assert_eq!(order.class("a.outer").unwrap().rank, 10);
        assert_eq!(order.class("a.outer").unwrap().sites.len(), 2);
        assert_eq!(order.edges.len(), 1);
        assert_eq!(order.edges[0].to, "b.inner");
        assert_eq!(order.site_to_class()["Bar.lock"], "b.inner");
    }

    #[test]
    fn rejects_unjustified_edges() {
        let toml = "[[edge]]\nfrom = \"a\"\nto = \"b\"\n";
        assert!(parse_lock_order(toml).is_err());
    }

    #[test]
    fn extracts_runtime_ranks() {
        let src = "pub const CORE_FREEZE: LockClass = LockClass { name: \"core.freeze\", rank: 22 };\n";
        let ranks = parse_runtime_ranks(src);
        assert_eq!(ranks, vec![("core.freeze".to_string(), 22, 1)]);
    }
}
