//! Shared scanner machinery for the lint rules and the locks pass.
//!
//! The scanners are deliberately line-based and syntactic — they strip
//! comments and string literals with a small state machine rather than
//! parsing Rust. Test code is exempt from most rules: the repo convention
//! keeps `#[cfg(test)] mod tests` as the final item of a file, so
//! everything from the first `#[cfg(test)]` line onward is treated as
//! test code.

use std::path::{Path, PathBuf};

/// Returns the code portion of a line: string/char literals blanked out,
/// everything from the first `//` (outside a literal) dropped. Multi-line
/// literals are not tracked; none of the patterns we search for span them.
pub fn code_portion(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut in_char = false;
    while let Some(c) = chars.next() {
        if in_str {
            if c == '\\' {
                chars.next();
            } else if c == '"' {
                in_str = false;
            }
            out.push(' ');
        } else if in_char {
            if c == '\\' {
                chars.next();
            } else if c == '\'' {
                in_char = false;
            }
            out.push(' ');
        } else {
            match c {
                '"' => {
                    in_str = true;
                    out.push(' ');
                }
                // A lifetime tick (`&'a`, `<'_>`) is followed by an
                // identifier char then no closing quote; a char literal
                // closes within a couple of chars. Treat as a literal
                // only when a closing quote appears nearby.
                '\'' => {
                    let mut lookahead = chars.clone();
                    let mut is_char = false;
                    if let Some(n1) = lookahead.next() {
                        if n1 == '\\' {
                            is_char = true;
                        } else if let Some(n2) = lookahead.next() {
                            is_char = n2 == '\'';
                        }
                    }
                    if is_char {
                        in_char = true;
                        out.push(' ');
                    } else {
                        out.push(c);
                    }
                }
                '/' if chars.peek() == Some(&'/') => break,
                _ => out.push(c),
            }
        }
    }
    out
}

/// Returns the comment portion of a line (text after `//` outside a
/// string), or `""` if the line has no comment.
pub fn comment_portion(line: &str) -> &str {
    let code = code_portion(line);
    // code_portion stops at the comment start, so the comment begins at
    // the first byte past what survived (if the raw line is longer).
    if code.len() < line.len() {
        &line[code.len()..]
    } else {
        ""
    }
}

/// True if `hay` contains `needle` as a standalone word (not flanked by
/// identifier characters), e.g. `unsafe` but not `unsafe_op_in_unsafe_fn`.
pub fn contains_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Whether a line is part of a contiguous comment/attribute block (used
/// when searching upward for a waiver or annotation).
pub fn is_comment_or_attr(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![") || t.starts_with(')')
}

/// Is `marker` present on the line at `line_idx` (0-based, comment
/// portion) or anywhere in the contiguous comment/attribute block directly
/// above it? This is the shared lookup behind `PANIC-OK:`, `ORDERING:`
/// and `LOCK-OK:` waivers.
pub fn line_has_marker(lines: &[&str], line_idx: usize, marker: &str) -> bool {
    if comment_portion(lines[line_idx]).contains(marker) {
        return true;
    }
    let mut i = line_idx;
    while i > 0 && is_comment_or_attr(lines[i - 1]) {
        i -= 1;
        if lines[i].contains(marker) {
            return true;
        }
    }
    false
}

/// Recursively collects `.rs` files under `dir`, skipping `target/`.
pub fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Collects `.rs` files under `root/rel` if that directory exists.
pub fn scan(root: &Path, rel: &str, out: &mut Vec<PathBuf>) {
    let dir = root.join(rel);
    if dir.is_dir() {
        rust_files(&dir, out);
    }
}
