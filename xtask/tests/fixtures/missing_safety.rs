// Lint fixture (not compiled): an unsafe block with no SAFETY comment.
pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}

// And one that is properly annotated, to pin down the rule's boundary.
pub fn read_raw_ok(p: *const u8) -> u8 {
    // SAFETY: fixture — caller guarantees p is valid.
    unsafe { *p }
}
