// Lint fixture (not compiled): an unwaived unwrap on the write path.
pub fn write(&self, batch: &WriteBatch) {
    let seq = self.seq.reserve(batch.len());
    self.wal.append(batch).unwrap();
    // PANIC-OK: fixture — this one is waived and must not be flagged.
    self.mbf.insert(batch).unwrap();
}
