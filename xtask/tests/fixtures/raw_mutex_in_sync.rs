// Lint fixture (not compiled): a raw std::sync::Mutex in a facade-scoped
// crate. The import alone must trip the raw-sync rule.
use std::sync::Mutex;

pub struct Registry {
    inner: Mutex<Vec<u64>>,
}

#[cfg(test)]
mod tests {
    // Raw primitives are fine in test code.
    use std::sync::Arc;
}
