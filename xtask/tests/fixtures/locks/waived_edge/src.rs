//! Fixture: same ascending nesting, waived at the site instead of
//! declared as an edge.

pub struct Outer {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Outer {
    pub fn nest(&self) -> u32 {
        let g = self.a.lock();
        // LOCK-OK: fixture waiver — the nesting is intentional and the
        // edge is deliberately left out of the TOML.
        let h = self.b.lock();
        *g + *h
    }
}
