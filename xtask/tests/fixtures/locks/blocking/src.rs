//! Fixture: durability barrier issued while a guard is live.

pub struct Outer {
    a: Mutex<File>,
    b: Mutex<u32>,
}

impl Outer {
    pub fn flush(&self, f: &File) {
        let g = self.a.lock();
        f.sync();
        drop(g);
    }
}
