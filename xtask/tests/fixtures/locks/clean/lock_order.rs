//! Fixture stand-in for crates/sync/src/lock_order.rs.

pub struct LockClass {
    pub name: &'static str,
    pub rank: u32,
}

pub const FIX_OUTER: LockClass = LockClass { name: "fix.outer", rank: 10 };
pub const FIX_INNER: LockClass = LockClass { name: "fix.inner", rank: 20 };
