//! Fixture: nests `a` (rank 10) under `b` (rank 20) — descending. The
//! runtime tracker test in crates/sync/src/lock_order.rs rejects the same
//! shape dynamically.

pub struct Outer {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Outer {
    pub fn nest(&self) -> u32 {
        let g = self.b.lock();
        let h = self.a.lock();
        *g + *h
    }
}
