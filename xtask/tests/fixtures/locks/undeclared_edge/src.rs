//! Fixture: nests `b` (rank 20) under `a` (rank 10) — ascending.

pub struct Outer {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Outer {
    pub fn nest(&self) -> u32 {
        let g = self.a.lock();
        let h = self.b.lock();
        *g + *h
    }
}
