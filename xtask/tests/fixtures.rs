//! Each lint rule must fire on its fixture file — and only where the
//! fixture intends it to. This pins the rules against silent rot: a
//! refactor that stops a rule from matching turns these tests red, not
//! the workspace green.

use std::path::Path;

use xtask::{check_raw_sync, check_safety_comments, check_write_path_panics, Rule};

fn fixture(name: &str) -> (std::path::PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let content = std::fs::read_to_string(&path).expect("fixture readable");
    (path, content)
}

#[test]
fn missing_safety_comment_fails() {
    let (path, content) = fixture("missing_safety.rs");
    let findings = check_safety_comments(&path, &content);
    assert_eq!(
        findings.len(),
        1,
        "exactly the unannotated block must fire: {findings:?}"
    );
    assert_eq!(findings[0].rule, Rule::SafetyComment);
    assert_eq!(findings[0].line, 3, "the bare `unsafe {{ *p }}` line");
}

#[test]
fn raw_std_mutex_in_sync_fails() {
    let (path, content) = fixture("raw_mutex_in_sync.rs");
    let findings = check_raw_sync(&path, &content);
    assert_eq!(
        findings.len(),
        1,
        "the import must fire, the #[cfg(test)] use must not: {findings:?}"
    );
    assert_eq!(findings[0].rule, Rule::RawSync);
    assert_eq!(findings[0].line, 3, "the `use std::sync::Mutex;` line");
}

#[test]
fn write_path_unwrap_fails() {
    let (path, content) = fixture("write_path_unwrap.rs");
    let findings = check_write_path_panics(&path, &content);
    assert_eq!(
        findings.len(),
        1,
        "the bare unwrap must fire, the PANIC-OK one must not: {findings:?}"
    );
    assert_eq!(findings[0].rule, Rule::WritePathPanic);
    assert_eq!(findings[0].line, 4, "the `self.wal.append(batch).unwrap()` line");
}

#[test]
fn workspace_is_clean() {
    // The binary exits non-zero on findings; CI runs it directly. This
    // duplicate keeps `cargo test` sufficient to catch regressions too.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap();
    let findings = xtask::run_lint(root);
    assert!(
        findings.is_empty(),
        "workspace lint must be clean:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

// ---------------------------------------------------------------------------
// `cargo xtask locks` fixture corpus: each error class the lock-order pass
// reports must fire on its fixture — and stay silent on the clean and
// waived ones.

fn locks_case(name: &str) -> Vec<xtask::locks::graph::LockFinding> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/locks")
        .join(name);
    xtask::locks::run_locks_files(
        &dir.join("LOCK_ORDER.toml"),
        &dir.join("lock_order.rs"),
        &[dir.join("src.rs")],
    )
    .expect("fixture hierarchy parses")
}

fn render(findings: &[xtask::locks::graph::LockFinding]) -> String {
    findings
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn locks_clean_fixture_passes() {
    let findings = locks_case("clean");
    assert!(findings.is_empty(), "declared edge, ascending nesting:\n{}", render(&findings));
}

#[test]
fn locks_undeclared_edge_fails() {
    let findings = locks_case("undeclared_edge");
    assert_eq!(findings.len(), 1, "exactly the missing edge:\n{}", render(&findings));
    assert!(findings[0].message.contains("undeclared lock edge"), "{}", findings[0]);
    assert_eq!(findings[0].line, 11, "the inner acquisition line");
}

#[test]
fn locks_declared_cycle_fails() {
    let findings = locks_case("cycle");
    assert!(
        findings.iter().any(|f| f.message.contains("cycle")),
        "the two declared edges close a loop:\n{}",
        render(&findings)
    );
}

#[test]
fn locks_blocking_under_guard_fails() {
    let findings = locks_case("blocking");
    assert_eq!(findings.len(), 1, "exactly the fsync under the guard:\n{}", render(&findings));
    assert!(findings[0].message.contains("blocking call"), "{}", findings[0]);
    assert_eq!(findings[0].line, 11, "the `f.sync()` line");
}

#[test]
fn locks_waived_edge_passes() {
    let findings = locks_case("waived_edge");
    assert!(findings.is_empty(), "LOCK-OK must silence the edge:\n{}", render(&findings));
}

#[test]
fn locks_observed_inversion_fails() {
    // The same descending shape the runtime tracker rejects with a panic
    // (see crates/sync/src/lock_order.rs tests): rank 10 acquired under
    // rank 20.
    let findings = locks_case("inversion");
    assert_eq!(findings.len(), 1, "exactly the descending edge:\n{}", render(&findings));
    assert!(findings[0].message.contains("ranks must ascend"), "{}", findings[0]);
}

#[test]
fn workspace_lock_hierarchy_is_consistent() {
    // Mirror of `workspace_is_clean` for the locks pass: CI runs the
    // binary, this keeps plain `cargo test` sufficient.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap();
    let findings = xtask::locks::run_locks(root).expect("workspace hierarchy parses");
    assert!(
        findings.is_empty(),
        "cargo xtask locks must be clean:\n{}",
        render(&findings)
    );
}
