//! Each lint rule must fire on its fixture file — and only where the
//! fixture intends it to. This pins the rules against silent rot: a
//! refactor that stops a rule from matching turns these tests red, not
//! the workspace green.

use std::path::Path;

use xtask::{check_raw_sync, check_safety_comments, check_write_path_panics, Rule};

fn fixture(name: &str) -> (std::path::PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let content = std::fs::read_to_string(&path).expect("fixture readable");
    (path, content)
}

#[test]
fn missing_safety_comment_fails() {
    let (path, content) = fixture("missing_safety.rs");
    let findings = check_safety_comments(&path, &content);
    assert_eq!(
        findings.len(),
        1,
        "exactly the unannotated block must fire: {findings:?}"
    );
    assert_eq!(findings[0].rule, Rule::SafetyComment);
    assert_eq!(findings[0].line, 3, "the bare `unsafe {{ *p }}` line");
}

#[test]
fn raw_std_mutex_in_sync_fails() {
    let (path, content) = fixture("raw_mutex_in_sync.rs");
    let findings = check_raw_sync(&path, &content);
    assert_eq!(
        findings.len(),
        1,
        "the import must fire, the #[cfg(test)] use must not: {findings:?}"
    );
    assert_eq!(findings[0].rule, Rule::RawSync);
    assert_eq!(findings[0].line, 3, "the `use std::sync::Mutex;` line");
}

#[test]
fn write_path_unwrap_fails() {
    let (path, content) = fixture("write_path_unwrap.rs");
    let findings = check_write_path_panics(&path, &content);
    assert_eq!(
        findings.len(),
        1,
        "the bare unwrap must fire, the PANIC-OK one must not: {findings:?}"
    );
    assert_eq!(findings[0].rule, Rule::WritePathPanic);
    assert_eq!(findings[0].line, 4, "the `self.wal.append(batch).unwrap()` line");
}

#[test]
fn workspace_is_clean() {
    // The binary exits non-zero on findings; CI runs it directly. This
    // duplicate keeps `cargo test` sufficient to catch regressions too.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap();
    let findings = xtask::run_lint(root);
    assert!(
        findings.is_empty(),
        "workspace lint must be clean:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
