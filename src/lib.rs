//! FloDB — a two-tier LSM memory component that unlocks memory in
//! persistent key-value stores.
//!
//! This is a from-scratch Rust reproduction of *FloDB: Unlocking Memory in
//! Persistent Key-Value Stores* (Balmau, Guerraoui, Trigonakis, Zablotchi —
//! EuroSys 2017). The umbrella crate re-exports the whole workspace:
//!
//! - [`FloDb`] (from [`core`]) — the paper's contribution: an LSM store
//!   whose memory component has **two levels**, a small fast hash-table
//!   *Membuffer* on top of a large sorted skiplist *Memtable*, drained in
//!   the background with skiplist multi-inserts and switched with RCU so
//!   reads, writes and scans all proceed concurrently.
//! - [`baselines`] — the four comparator designs of the paper's evaluation
//!   (LevelDB, HyperLevelDB, RocksDB, RocksDB/cLSM), reimplemented over
//!   the same disk substrate.
//! - [`storage`] — the LevelDB-style disk component (SSTables, WAL,
//!   leveled compaction, table caches) and the simulated throttled disk.
//! - [`membuffer`], [`memtable`], [`sync`] — the concurrent substrates:
//!   partitioned cache-line-bucket hash table, lock-free skiplist with
//!   multi-insert, and the RCU/sequence/pause primitives.
//! - [`workloads`] — the evaluation's key distributions, operation mixes
//!   and multithreaded measurement driver.
//!
//! # Quickstart
//!
//! Writes are fallible (a store with a commit log can fail to acknowledge
//! one) and every error unifies under [`Error`], so `?` works end to end:
//!
//! ```
//! use std::ops::ControlFlow;
//! use flodb::{Error, FloDb, FloDbOptions, KvStore, WriteBatch};
//!
//! fn main() -> Result<(), Error> {
//!     let db = FloDb::open(FloDbOptions::small_for_tests())?;
//!     db.put(b"user:1", b"alice")?;
//!     db.put(b"user:2", b"bob")?;
//!     assert_eq!(db.get(b"user:1"), Some(b"alice".to_vec()));
//!
//!     // A batch commits atomically: one WAL frame, replayed
//!     // all-or-nothing on crash recovery.
//!     let mut batch = WriteBatch::new();
//!     batch.put(b"user:3", b"carol").delete(b"user:2");
//!     db.write(&batch)?;
//!
//!     // Serializable range scan across all levels (Membuffer included —
//!     // the master scan drains it first); `scan` collects, `scan_with`
//!     // streams and can stop early.
//!     let users = db.scan(b"user:", b"user:~");
//!     assert_eq!(users.len(), 2);
//!     let mut first = None;
//!     db.scan_with(b"user:", b"user:~", &mut |key, _value| {
//!         first = Some(key.to_vec());
//!         ControlFlow::Break(())
//!     });
//!     assert_eq!(first.as_deref(), Some(&b"user:1"[..]));
//!     Ok(())
//! }
//! ```
//!
//! # Picking a configuration
//!
//! [`FloDbOptions::default_in_memory`] reproduces the paper's default
//! shape (128 MB memory component, 1/4 Membuffer + 3/4 Memtable, one
//! drain thread, multi-insert draining) over an unthrottled in-memory
//! disk; [`FloDbOptions::paper_ssd`] throttles persistence like the
//! paper's SSD; `small_for_tests` shrinks everything for fast tests. Use
//! [`storage::FsEnv`] as `options.env` for a real on-disk store.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use flodb_core::{
    Error, FloDb, FloDbOptions, FloDbStats, KvStore, OpenError, OptionsError, Partitioner,
    ReclamationStats, ScanEntry, ShardedFloDb, ShardedOptions, StoreStats, TelemetryLevel,
    TelemetrySnapshot, WalMode, WriteBatch, WriteError,
};

/// The FloDB store and the uniform `KvStore` interface (re-export of
/// `flodb-core`).
pub mod core {
    pub use flodb_core::*;
}

/// Baseline LSM designs from the paper's evaluation (re-export of
/// `flodb-baselines`).
pub mod baselines {
    pub use flodb_baselines::*;
}

/// The LSM disk component substrate (re-export of `flodb-storage`).
pub mod storage {
    pub use flodb_storage::*;
}

/// The Membuffer: a partitioned concurrent hash table (re-export of
/// `flodb-membuffer`).
pub mod membuffer {
    pub use flodb_membuffer::*;
}

/// The Memtable: a lock-free skiplist with multi-insert (re-export of
/// `flodb-memtable`).
pub mod memtable {
    pub use flodb_memtable::*;
}

/// Concurrency primitives: RCU, sequence numbers, pause flags, flat
/// combining (re-export of `flodb-sync`).
pub mod sync {
    pub use flodb_sync::*;
}

/// Workload generation and the measurement driver (re-export of
/// `flodb-workloads`).
pub mod workloads {
    pub use flodb_workloads::*;
}
